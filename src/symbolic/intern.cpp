#include "symbolic/intern.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"

namespace ad::sym {

// ---------------------------------------------------------------------------
// Serialization & fingerprints
// ---------------------------------------------------------------------------

void serializeExpr(const Expr& e, std::string& out) {
  out += '(';
  for (const auto& m : e.terms()) {
    out += std::to_string(m.coeff().num());
    out += '/';
    out += std::to_string(m.coeff().den());
    for (const auto& f : m.symbols()) {
      out += 's';
      out += std::to_string(f.id);
      out += '^';
      out += std::to_string(f.power);
    }
    if (m.hasPow2()) {
      out += 'p';
      serializeExpr(m.pow2Exponent(), out);
    }
    out += ';';
  }
  out += ')';
}

std::uint64_t fingerprintExpr(const Expr& e) {
  // FNV-1a over the structural pieces; no allocation.
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  for (const auto& m : e.terms()) {
    mix(static_cast<std::uint64_t>(m.coeff().num()));
    mix(static_cast<std::uint64_t>(m.coeff().den()));
    for (const auto& f : m.symbols()) {
      mix((static_cast<std::uint64_t>(f.id) << 8) | static_cast<std::uint64_t>(f.power & 0xff));
    }
    if (m.hasPow2()) mix(fingerprintExpr(m.pow2Exponent()) | 1ULL);
  }
  return h;
}

std::string serializeAssumptions(const Assumptions& a) {
  // Everything the prover reads: per-symbol kind + effective bounds (the
  // kind-based defaults included, through lower()/upper()), then the facts.
  std::string out;
  const SymbolTable& table = a.table();
  for (SymbolId id = 0; id < table.size(); ++id) {
    out += 'k';
    out += std::to_string(static_cast<int>(table.kind(id)));
    if (const auto lo = a.lower(id)) {
      out += 'L';
      serializeExpr(*lo, out);
    }
    if (const auto hi = a.upper(id)) {
      out += 'U';
      serializeExpr(*hi, out);
    }
    out += '|';
  }
  for (const Expr& f : a.facts()) {
    out += 'F';
    serializeExpr(f, out);
  }
  return out;
}

std::string serializeAssumptionsSlice(const Assumptions& a, const Expr& e) {
  // Closure seeds: the query's free symbols and every fact's (the
  // fact-combination step can rewrite any query against any fact). Then
  // close over bound expressions: eliminating a symbol substitutes its
  // bounds, whose symbols the recursion reads next.
  std::set<SymbolId> closed;
  std::vector<SymbolId> work = e.freeSymbols();
  for (const Expr& f : a.facts()) {
    const auto fs = f.freeSymbols();
    work.insert(work.end(), fs.begin(), fs.end());
  }
  while (!work.empty()) {
    const SymbolId id = work.back();
    work.pop_back();
    if (!closed.insert(id).second) continue;
    for (const auto& b : {a.lower(id), a.upper(id)}) {
      if (!b) continue;
      for (SymbolId s : b->freeSymbols()) {
        if (closed.count(s) == 0) work.push_back(s);
      }
    }
  }
  // '@' keeps slice keys disjoint from full-assumptions keys in the shared
  // context registry (full keys never start with it). Symbol ids are
  // explicit here — a slice is a sparse subset, not a dense table scan.
  std::string out = "@";
  const SymbolTable& table = a.table();
  for (SymbolId id : closed) {  // std::set: ascending, deterministic
    out += 's';
    out += std::to_string(id);
    out += 'k';
    out += std::to_string(static_cast<int>(table.kind(id)));
    if (const auto lo = a.lower(id)) {
      out += 'L';
      serializeExpr(*lo, out);
    }
    if (const auto hi = a.upper(id)) {
      out += 'U';
      serializeExpr(*hi, out);
    }
    out += '|';
  }
  for (const Expr& f : a.facts()) {
    out += 'F';
    serializeExpr(f, out);
  }
  return out;
}

namespace {

std::uint64_t fnv1aBytes(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

const Assumptions::MemoKey& Assumptions::memoKey() const {
  if (!memoKey_) {
    auto key = std::make_shared<MemoKey>();
    key->text = serializeAssumptions(*this);
    key->hash = fnv1aBytes(key->text);
    memoKey_ = std::move(key);
  }
  return *memoKey_;
}

// ---------------------------------------------------------------------------
// ExprIntern
// ---------------------------------------------------------------------------

namespace detail {
std::atomic<bool> gDegenerateHash{false};
}  // namespace detail

namespace {

/// Deep heap footprint of one stored normal form (vectors by capacity, plus
/// nested pow2 exponents). Approximate by design — it feeds a gauge, not an
/// allocator.
std::size_t exprFootprint(const Expr& e) {
  std::size_t b = e.terms().capacity() * sizeof(Monomial);
  for (const auto& m : e.terms()) {
    b += m.symbols().capacity() * sizeof(SymbolFactor);
    if (m.hasPow2()) b += sizeof(Expr) + exprFootprint(m.pow2Exponent());
  }
  return b;
}

/// Probe start for a shard-local table. The low log2(kShards) bits of the
/// hash are constant within a shard (they selected it), so start from the
/// bits above them or every entry would cluster in two slots.
std::size_t probeStart(std::uint64_t hash, std::size_t mask) {
  return static_cast<std::size_t>(hash >> 6) & mask;
}

void insertInternSlot(std::vector<const detail::InternNode*>& slots,
                      const detail::InternNode* node) {
  const std::size_t mask = slots.size() - 1;
  std::size_t slot = probeStart(node->hash, mask);
  while (slots[slot] != nullptr) slot = (slot + 1) & mask;
  slots[slot] = node;
}

}  // namespace

ExprIntern& ExprIntern::global() {
  static ExprIntern instance;
  return instance;
}

template <typename E>
InternedExpr ExprIntern::internImpl(E&& e) {
  const std::uint64_t h = internHash(e);
  const std::size_t idx = static_cast<std::size_t>(h % kShards);
  Shard& shard = shards_[idx];
  const bool profiled = obs::profiler().enabled();
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kExprIntern, idx);

  std::size_t bytesDelta = 0;
  if (shard.slots.empty()) {
    shard.slots.assign(kInitialSlots, nullptr);
    bytesDelta += kInitialSlots * sizeof(const detail::InternNode*);
  }

  // Linear probe; the cached hash rejects almost every non-match before the
  // structural compare, and under the degenerate-hash hook the structural
  // compare alone disambiguates (slower, never wrong).
  std::size_t mask = shard.slots.size() - 1;
  std::size_t slot = probeStart(h, mask);
  std::size_t steps = 0;
  const detail::InternNode* found = nullptr;
  while (shard.slots[slot] != nullptr) {
    ++steps;
    const detail::InternNode* cand = shard.slots[slot];
    if (cand->hash == h && cand->expr == e) {
      found = cand;
      break;
    }
    slot = (slot + 1) & mask;
  }
  if (steps == 0) steps = 1;  // an empty first slot still costs one inspection
  const bool hit = found != nullptr;

  if (found == nullptr) {
    // Grow at 70% occupancy so probes stay short.
    if ((shard.count + 1) * kGrowDen > shard.slots.size() * kGrowNum) {
      std::vector<const detail::InternNode*> next(shard.slots.size() * 2, nullptr);
      for (const detail::InternNode* n : shard.slots) {
        if (n != nullptr) insertInternSlot(next, n);
      }
      bytesDelta += (next.size() - shard.slots.size()) * sizeof(const detail::InternNode*);
      shard.slots = std::move(next);
      mask = shard.slots.size() - 1;
    }
    // Bump-allocate the node from the shard's current slab.
    if (shard.chunks.empty() || shard.lastChunkUsed == kChunkNodes) {
      shard.chunks.push_back(std::make_unique<detail::InternNode[]>(kChunkNodes));
      shard.lastChunkUsed = 0;
      bytesDelta += kChunkNodes * sizeof(detail::InternNode);
    }
    detail::InternNode* node = &shard.chunks.back()[shard.lastChunkUsed++];
    node->hash = h;
    node->expr = std::forward<E>(e);  // the one and only copy (or move)
    insertInternSlot(shard.slots, node);
    ++shard.count;
    bytesDelta += exprFootprint(node->expr);
    shard.bytes += bytesDelta;
    found = node;

    static obs::Gauge& exprs = obs::metrics().gauge("ad.intern.exprs");
    exprs.set(static_cast<std::int64_t>(count_.fetch_add(1, std::memory_order_relaxed)) + 1);
    static obs::Gauge& bytes = obs::metrics().gauge("ad.intern.bytes");
    bytes.set(static_cast<std::int64_t>(bytes_.fetch_add(bytesDelta, std::memory_order_relaxed) +
                                        bytesDelta));
  }

  if (profiled) {
    obs::ShardStats& stats = obs::profiler().shard(obs::ShardFamily::kExprIntern, idx);
    (hit ? stats.hits : stats.misses).fetch_add(1, std::memory_order_relaxed);
    stats.probeSteps.fetch_add(steps, std::memory_order_relaxed);
  }
  return InternedExpr(found);
}

InternedExpr ExprIntern::intern(const Expr& e) { return internImpl(e); }
InternedExpr ExprIntern::intern(Expr&& e) { return internImpl(std::move(e)); }

std::size_t ExprIntern::size() const {
  // Atomic mirror of the per-shard counts: readable without touching any
  // shard lock (summing the shards directly would race their writers).
  return count_.load(std::memory_order_relaxed);
}

std::size_t ExprIntern::bytes() const { return bytes_.load(std::memory_order_relaxed); }

ExprIntern::TableStats ExprIntern::tableStats() const {
  TableStats out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.exprs += shard.count;
    out.bytes += shard.bytes;
    out.slots += shard.slots.size();
  }
  return out;
}

void ExprIntern::clear() {
  // The proof memo keys entries by node pointers into this arena; drop it
  // first so nothing can hit a dangling key while the slabs are freed.
  ProofMemo::global().clear();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.slots.clear();
    shard.chunks.clear();
    shard.lastChunkUsed = 0;
    shard.count = 0;
    shard.bytes = 0;
  }
  count_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
  obs::metrics().gauge("ad.intern.exprs").set(0);
  obs::metrics().gauge("ad.intern.bytes").set(0);
}

DegenerateHashGuard::DegenerateHashGuard()
    : previous_(detail::gDegenerateHash.load(std::memory_order_relaxed)) {
  // Nodes interned under one hash regime are unfindable under the other, so
  // the arena (and with it the pointer-keyed memo) restarts cold on both
  // edges of the guard.
  ExprIntern::global().clear();
  detail::gDegenerateHash.store(true, std::memory_order_relaxed);
}

DegenerateHashGuard::~DegenerateHashGuard() {
  detail::gDegenerateHash.store(previous_, std::memory_order_relaxed);
  ExprIntern::global().clear();
}

// ---------------------------------------------------------------------------
// ProofMemoContext
// ---------------------------------------------------------------------------

namespace {

/// Distinct probe sequences for the same expression under different ops, so
/// e.g. kNonNegative and kPositive entries for one node don't chain onto
/// each other.
std::uint64_t mixOp(std::uint64_t hash, ProofMemoContext::Op op) {
  return hash ^ ((static_cast<std::uint64_t>(op) + 1) * 0x9e3779b97f4a7c15ULL);
}

/// Per-shard hit/miss + probe-length attribution for the profiler
/// ("memo.context" family); one relaxed load when disabled.
void noteMemoProbe(std::size_t idx, bool hit, std::size_t steps) {
  obs::Profiler& p = obs::profiler();
  if (!p.enabled()) return;
  obs::ShardStats& stats = p.shard(obs::ShardFamily::kMemoContext, idx);
  (hit ? stats.hits : stats.misses).fetch_add(1, std::memory_order_relaxed);
  stats.probeSteps.fetch_add(steps, std::memory_order_relaxed);
}

}  // namespace

template <typename Value>
const Value* ProofMemoContext::OpPtrTable<Value>::find(Op op, const InternedExpr& e,
                                                       std::size_t& steps) const {
  steps = 1;
  if (slots.empty()) return nullptr;
  const std::size_t mask = slots.size() - 1;
  std::size_t slot = static_cast<std::size_t>(mixOp(e.hash(), op) >> 6) & mask;
  while (slots[slot].node != nullptr) {
    const Slot& s = slots[slot];
    if (s.node == e.node_ && s.op == op) return &s.value;
    slot = (slot + 1) & mask;
    ++steps;
  }
  return nullptr;
}

template <typename Value>
void ProofMemoContext::OpPtrTable<Value>::insert(Op op, const InternedExpr& e, Value value) {
  if (slots.empty()) slots.resize(16);
  if ((count + 1) * 10 > slots.size() * 7) grow();
  const std::size_t mask = slots.size() - 1;
  std::size_t slot = static_cast<std::size_t>(mixOp(e.hash(), op) >> 6) & mask;
  while (slots[slot].node != nullptr) {
    // Two workers can race to publish the same (context, query) answer; the
    // purity contract makes the values identical, first writer wins.
    if (slots[slot].node == e.node_ && slots[slot].op == op) return;
    slot = (slot + 1) & mask;
  }
  slots[slot] = Slot{e.node_, op, std::move(value)};
  ++count;
}

template <typename Value>
void ProofMemoContext::OpPtrTable<Value>::grow() {
  std::vector<Slot> old = std::move(slots);
  slots.assign(old.size() * 2, Slot{});
  const std::size_t mask = slots.size() - 1;
  for (Slot& s : old) {
    if (s.node == nullptr) continue;
    std::size_t slot = static_cast<std::size_t>(mixOp(s.node->hash, s.op) >> 6) & mask;
    while (slots[slot].node != nullptr) slot = (slot + 1) & mask;
    slots[slot] = std::move(s);
  }
}

std::optional<bool> ProofMemoContext::lookupBool(Op op, const InternedExpr& e) {
  const std::size_t idx = shardIndexFor(e);
  Shard& shard = shards_[idx];
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kMemoContext, idx);
  std::size_t steps = 0;
  if (const bool* v = shard.bools.find(op, e, steps)) {
    noteMemoProbe(idx, true, steps);
    return *v;
  }
  noteMemoProbe(idx, false, steps);
  return std::nullopt;
}

void ProofMemoContext::storeBool(Op op, const InternedExpr& e, bool value) {
  const std::size_t idx = shardIndexFor(e);
  Shard& shard = shards_[idx];
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kMemoContext, idx);
  shard.bools.insert(op, e, value);
}

std::optional<std::optional<int>> ProofMemoContext::lookupSign(const InternedExpr& e) {
  const std::size_t idx = shardIndexFor(e);
  Shard& shard = shards_[idx];
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kMemoContext, idx);
  std::size_t steps = 0;
  if (const std::optional<int>* v = shard.signs.find(Op::kSign, e, steps)) {
    noteMemoProbe(idx, true, steps);
    return *v;
  }
  noteMemoProbe(idx, false, steps);
  return std::nullopt;
}

void ProofMemoContext::storeSign(const InternedExpr& e, std::optional<int> value) {
  const std::size_t idx = shardIndexFor(e);
  Shard& shard = shards_[idx];
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kMemoContext, idx);
  shard.signs.insert(Op::kSign, e, value);
}

std::optional<std::optional<Expr>> ProofMemoContext::lookupExpr(Op op, const InternedExpr& e) {
  const std::size_t idx = shardIndexFor(e);
  Shard& shard = shards_[idx];
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kMemoContext, idx);
  std::size_t steps = 0;
  if (const std::optional<InternedExpr>* v = shard.exprs.find(op, e, steps)) {
    noteMemoProbe(idx, true, steps);
    std::optional<std::optional<Expr>> out;
    out.emplace();                      // found; inner stays nullopt for "no bound"
    if (*v) out->emplace(*(**v));       // copy out of the interned value node
    return out;
  }
  noteMemoProbe(idx, false, steps);
  return std::nullopt;
}

void ProofMemoContext::storeExpr(Op op, const InternedExpr& e, const std::optional<Expr>& value) {
  // Bound results recur across queries; interning the value (outside the
  // shard lock — the arena has its own) dedupes their storage.
  std::optional<InternedExpr> stored;
  if (value) stored = ExprIntern::global().intern(*value);
  const std::size_t idx = shardIndexFor(e);
  Shard& shard = shards_[idx];
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kMemoContext, idx);
  shard.exprs.insert(op, e, stored);
}

std::size_t ProofMemoContext::entries() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    n += shard.bools.count + shard.signs.count + shard.exprs.count;
  }
  return n;
}

bool ProofMemoContext::claimOrWait(Op op, const InternedExpr& e) {
  const auto key = std::make_pair(op, e.node_);
  std::unique_lock<std::mutex> lk(inflightMu_);
  const auto absent = [&] {
    return std::find(inflight_.begin(), inflight_.end(), key) == inflight_.end();
  };
  if (absent()) {
    inflight_.push_back(key);
    return true;
  }
  inflightCv_.wait(lk, absent);
  return false;
}

void ProofMemoContext::release(Op op, const InternedExpr& e) {
  const auto key = std::make_pair(op, e.node_);
  {
    std::lock_guard<std::mutex> lk(inflightMu_);
    inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), key), inflight_.end());
  }
  inflightCv_.notify_all();
}

// ---------------------------------------------------------------------------
// ProofMemo
// ---------------------------------------------------------------------------

namespace {
std::atomic<bool> gMemoEnabled{true};
}  // namespace

ProofMemo& ProofMemo::global() {
  static ProofMemo instance;
  return instance;
}

bool ProofMemo::enabled() { return gMemoEnabled.load(std::memory_order_relaxed); }
void ProofMemo::setEnabled(bool on) { gMemoEnabled.store(on, std::memory_order_relaxed); }

std::shared_ptr<ProofMemoContext> ProofMemo::context(const Assumptions& a) {
  const Assumptions::MemoKey& key = a.memoKey();  // cached: no rebuild, no allocation
  return contextFor(detail::degenerateHashForced() ? 0 : key.hash, key.text);
}

std::shared_ptr<ProofMemoContext> ProofMemo::sliceContext(const Assumptions& a, const Expr& e) {
  // Built per first-level miss, so the slice serialization is off the hit
  // path entirely; misses are where the closure walk pays for itself.
  const std::string text = serializeAssumptionsSlice(a, e);
  return contextFor(detail::degenerateHashForced() ? 0 : fnv1aBytes(text), text);
}

std::shared_ptr<ProofMemoContext> ProofMemo::contextFor(std::uint64_t h, const std::string& text) {
  const std::size_t idx = static_cast<std::size_t>(h % kShards);
  Shard& shard = shards_[idx];
  const bool profiled = obs::profiler().enabled();
  obs::ShardLock lock(shard.mu, obs::ShardFamily::kMemoRegistry, idx);
  std::size_t steps = 0;
  for (Entry& entry : shard.entries) {
    ++steps;
    // Hash first: the exact-serialization compare runs only within a hash
    // match, so a hit costs one string compare and zero allocations.
    if (entry.hash == h && entry.key == text) {
      if (profiled) {
        obs::ShardStats& stats = obs::profiler().shard(obs::ShardFamily::kMemoRegistry, idx);
        stats.hits.fetch_add(1, std::memory_order_relaxed);
        stats.probeSteps.fetch_add(steps, std::memory_order_relaxed);
      }
      return entry.ctx;
    }
  }
  shard.entries.push_back(Entry{h, text, std::make_shared<ProofMemoContext>()});
  if (profiled) {
    obs::ShardStats& stats = obs::profiler().shard(obs::ShardFamily::kMemoRegistry, idx);
    stats.misses.fetch_add(1, std::memory_order_relaxed);
    stats.probeSteps.fetch_add(steps == 0 ? 1 : steps, std::memory_order_relaxed);
  }
  static obs::Gauge& contexts = obs::metrics().gauge("ad.intern.contexts");
  contexts.set(contextCount_.fetch_add(1, std::memory_order_relaxed) + 1);
  return shard.entries.back().ctx;
}

ProofMemo::Stats ProofMemo::stats() const {
  Stats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.contexts = contextCount_.load(std::memory_order_relaxed);
  return s;
}

void ProofMemo::clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
  }
  contextCount_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  obs::metrics().gauge("ad.intern.contexts").set(0);
}

void ProofMemo::recordHit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  // Resolved once: a registry lookup per probe would lock the registry mutex
  // on the hottest path of the whole engine (millions of probes per batch).
  static obs::Counter& proofHits = obs::metrics().counter("ad.intern.proof_hits");
  proofHits.add(1);
}

void ProofMemo::recordMiss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter& proofMisses = obs::metrics().counter("ad.intern.proof_misses");
  proofMisses.add(1);
}

}  // namespace ad::sym
