#include "symbolic/expr.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <sstream>

#include "support/diagnostics.hpp"

namespace ad::sym {

// ---------------------------------------------------------------------------
// SymbolTable
// ---------------------------------------------------------------------------

SymbolId SymbolTable::intern(const std::string& name, SymbolKind kind) {
  if (auto it = byName_.find(name); it != byName_.end()) {
    AD_REQUIRE(infos_[it->second].kind == kind,
               "symbol '" + name + "' re-declared with a different kind");
    return it->second;
  }
  const auto id = static_cast<SymbolId>(infos_.size());
  infos_.push_back(Info{name, kind, {}});
  byName_.emplace(name, id);
  return id;
}

SymbolId SymbolTable::parameter(const std::string& name) {
  return intern(name, SymbolKind::kParameter);
}

SymbolId SymbolTable::index(const std::string& name) { return intern(name, SymbolKind::kIndex); }

SymbolId SymbolTable::pow2Parameter(const std::string& name, const std::string& logName) {
  AD_REQUIRE(byName_.find(name) == byName_.end() ||
                 (lookup(logName) && infos_[*lookup(logName)].pow2ParamName == name),
             "pow2 parameter '" + name + "' conflicts with an existing symbol");
  const SymbolId log = intern(logName, SymbolKind::kLog2Parameter);
  infos_[log].pow2ParamName = name;
  // Record the parameter name so lookups resolve to the log symbol.
  byName_.emplace(name, log);
  return log;
}

std::optional<SymbolId> SymbolTable::lookup(const std::string& name) const {
  if (auto it = byName_.find(name); it != byName_.end()) return it->second;
  return std::nullopt;
}

const std::string& SymbolTable::name(SymbolId id) const {
  AD_REQUIRE(id < infos_.size(), "symbol id out of range");
  return infos_[id].name;
}

SymbolKind SymbolTable::kind(SymbolId id) const {
  AD_REQUIRE(id < infos_.size(), "symbol id out of range");
  return infos_[id].kind;
}

const std::string& SymbolTable::pow2ParamName(SymbolId id) const {
  AD_REQUIRE(id < infos_.size(), "symbol id out of range");
  return infos_[id].pow2ParamName;
}

std::optional<SymbolId> SymbolTable::log2SymbolOf(const std::string& name) const {
  if (auto it = byName_.find(name); it != byName_.end()) {
    if (infos_[it->second].kind == SymbolKind::kLog2Parameter &&
        infos_[it->second].pow2ParamName == name) {
      return it->second;
    }
  }
  return std::nullopt;
}

Expr makeSymbolExpr(SymbolTable& table, const std::string& name, bool internIfMissing) {
  if (auto id = table.lookup(name)) {
    if (table.kind(*id) == SymbolKind::kLog2Parameter && table.pow2ParamName(*id) == name) {
      return Expr::pow2(Expr::symbol(*id));
    }
    return Expr::symbol(*id);
  }
  AD_REQUIRE(internIfMissing, "unknown symbol '" + name + "'");
  return Expr::symbol(table.parameter(name));
}

// ---------------------------------------------------------------------------
// Monomial
// ---------------------------------------------------------------------------

const Expr& Monomial::pow2Exponent() const {
  AD_REQUIRE(pow2_ != nullptr, "monomial has no pow2 factor");
  return *pow2_;
}

bool Monomial::sameKey(const Monomial& other) const { return compareKey(other) == 0; }

int Monomial::compareKey(const Monomial& other) const {
  return Expr::compareMonomialKey(*this, other);
}

namespace {

int totalDegree(const Monomial& m) {
  int d = 0;
  for (const auto& f : m.symbols()) d += f.power;
  return d;
}

/// 2^k as a Rational; |k| must stay within int64 range.
Rational pow2Rational(std::int64_t k) {
  AD_REQUIRE(k >= -62 && k <= 62, "pow2 constant exponent out of representable range");
  const std::int64_t v = std::int64_t{1} << (k < 0 ? -k : k);
  return k >= 0 ? Rational(v) : Rational(1, v);
}

std::int64_t checkedIPow(std::int64_t base, int exp) {
  std::int64_t r = 1;
  for (int i = 0; i < exp; ++i) r = checkedMul(r, base);
  return r;
}

}  // namespace

int Expr::compareMonomialKey(const Monomial& a, const Monomial& b) {
  // Graded ordering on the symbol part keeps multivariate division sane.
  const int da = totalDegree(a);
  const int db = totalDegree(b);
  if (da != db) return da < db ? -1 : 1;
  const auto& sa = a.symbols();
  const auto& sb = b.symbols();
  for (std::size_t i = 0; i < std::min(sa.size(), sb.size()); ++i) {
    if (sa[i].id != sb[i].id) return sa[i].id < sb[i].id ? -1 : 1;
    if (sa[i].power != sb[i].power) return sa[i].power < sb[i].power ? -1 : 1;
  }
  if (sa.size() != sb.size()) return sa.size() < sb.size() ? -1 : 1;
  const bool pa = a.hasPow2();
  const bool pb = b.hasPow2();
  if (pa != pb) return pa ? 1 : -1;
  if (pa) return a.pow2Exponent().compare(b.pow2Exponent());
  return 0;
}

// ---------------------------------------------------------------------------
// Expr construction & normalization
// ---------------------------------------------------------------------------

Expr Expr::constant(std::int64_t value) { return constant(Rational(value)); }

Expr Expr::constant(Rational value) {
  Expr e;
  if (!value.isZero()) e.terms_.push_back(Monomial(value));
  return e;
}

Expr Expr::symbol(SymbolId id) {
  Expr e;
  Monomial m(Rational(1));
  m.symbols_.push_back(SymbolFactor{id, 1});
  e.terms_.push_back(std::move(m));
  return e;
}

Expr Expr::pow2(const Expr& exponent) {
  const Rational c = exponent.constantTerm();
  AD_REQUIRE(c.isInteger(), "pow2 exponent with non-integer constant part");
  Expr rest = exponent - Expr::constant(c);
  const Rational coeff = pow2Rational(c.asInteger());
  if (rest.isZero()) return Expr::constant(coeff);
  Expr e;
  Monomial m(coeff);
  m.pow2_ = std::make_shared<const Expr>(std::move(rest));
  e.terms_.push_back(std::move(m));
  return e;
}

bool Expr::isConstant() const noexcept {
  return terms_.empty() || (terms_.size() == 1 && terms_[0].isConstant());
}

std::optional<Rational> Expr::asConstant() const {
  if (terms_.empty()) return Rational(0);
  if (terms_.size() == 1 && terms_[0].isConstant()) return terms_[0].coeff();
  return std::nullopt;
}

std::optional<std::int64_t> Expr::asInteger() const {
  if (auto c = asConstant(); c && c->isInteger()) return c->asInteger();
  return std::nullopt;
}

Rational Expr::constantTerm() const {
  for (const auto& m : terms_) {
    if (m.isConstant()) return m.coeff();
  }
  return Rational(0);
}

void Expr::addMonomial(Monomial m) {
  if (m.coeff_.isZero()) return;
  terms_.push_back(std::move(m));
}

void Expr::normalizeSort() {
  std::sort(terms_.begin(), terms_.end(),
            [](const Monomial& a, const Monomial& b) { return compareMonomialKey(a, b) < 0; });
  std::vector<Monomial> out;
  out.reserve(terms_.size());
  for (auto& m : terms_) {
    if (!out.empty() && out.back().sameKey(m)) {
      out.back().coeff_ += m.coeff_;
      if (out.back().coeff_.isZero()) out.pop_back();
    } else if (!m.coeff_.isZero()) {
      out.push_back(std::move(m));
    }
  }
  terms_ = std::move(out);
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

Expr Expr::operator-() const {
  Expr r = *this;
  for (auto& m : r.terms_) m.coeff_ = -m.coeff_;
  return r;
}

Expr operator+(const Expr& a, const Expr& b) {
  Expr r = a;
  r.terms_.insert(r.terms_.end(), b.terms_.begin(), b.terms_.end());
  r.normalizeSort();
  return r;
}

Expr operator-(const Expr& a, const Expr& b) { return a + (-b); }

Monomial Expr::mulMonomial(const Monomial& a, const Monomial& b) {
  Monomial r(a.coeff_ * b.coeff_);
  // Merge sorted symbol factor lists, adding powers.
  auto ia = a.symbols_.begin();
  auto ib = b.symbols_.begin();
  while (ia != a.symbols_.end() || ib != b.symbols_.end()) {
    if (ib == b.symbols_.end() || (ia != a.symbols_.end() && ia->id < ib->id)) {
      r.symbols_.push_back(*ia++);
    } else if (ia == a.symbols_.end() || ib->id < ia->id) {
      r.symbols_.push_back(*ib++);
    } else {
      r.symbols_.push_back(SymbolFactor{ia->id, ia->power + ib->power});
      ++ia;
      ++ib;
    }
  }
  if (a.pow2_ && b.pow2_) {
    Expr sum = *a.pow2_ + *b.pow2_;
    // Constant parts of the two exponents are zero, so the sum's is too.
    if (!sum.isZero()) r.pow2_ = std::make_shared<const Expr>(std::move(sum));
  } else if (a.pow2_) {
    r.pow2_ = a.pow2_;
  } else if (b.pow2_) {
    r.pow2_ = b.pow2_;
  }
  return r;
}

Expr operator*(const Expr& a, const Expr& b) {
  Expr r;
  r.terms_.reserve(a.terms_.size() * b.terms_.size());
  for (const auto& ma : a.terms_) {
    for (const auto& mb : b.terms_) {
      r.addMonomial(Expr::mulMonomial(ma, mb));
    }
  }
  r.normalizeSort();
  return r;
}

std::optional<Monomial> Expr::divideMonomial(const Monomial& a, const Monomial& b) {
  AD_REQUIRE(!b.coeff_.isZero(), "division by zero monomial");
  Monomial r(a.coeff_ / b.coeff_);
  auto ia = a.symbols_.begin();
  for (const auto& fb : b.symbols_) {
    while (ia != a.symbols_.end() && ia->id < fb.id) r.symbols_.push_back(*ia++);
    if (ia == a.symbols_.end() || ia->id != fb.id || ia->power < fb.power) return std::nullopt;
    if (ia->power > fb.power) r.symbols_.push_back(SymbolFactor{ia->id, ia->power - fb.power});
    ++ia;
  }
  while (ia != a.symbols_.end()) r.symbols_.push_back(*ia++);
  // pow2 parts always divide: exponents subtract.
  if (a.pow2_ && b.pow2_) {
    Expr diff = *a.pow2_ - *b.pow2_;
    if (!diff.isZero()) r.pow2_ = std::make_shared<const Expr>(std::move(diff));
  } else if (a.pow2_) {
    r.pow2_ = a.pow2_;
  } else if (b.pow2_) {
    Expr neg = -*b.pow2_;
    r.pow2_ = std::make_shared<const Expr>(std::move(neg));
  }
  return r;
}

std::optional<Expr> Expr::divideExact(const Expr& a, const Expr& b) {
  AD_REQUIRE(!b.isZero(), "division by zero expression");
  if (a.isZero()) return Expr();
  if (b.terms_.size() == 1) {
    Expr q;
    for (const auto& m : a.terms_) {
      auto d = divideMonomial(m, b.terms_[0]);
      if (!d) return std::nullopt;
      q.addMonomial(std::move(*d));
    }
    q.normalizeSort();
    return q;
  }
  // Multivariate division: repeatedly cancel the leading (largest-key) term of
  // the remainder against the leading term of the divisor. A step cap guards
  // against the (pathological) non-terminating cases that the pow2-graded
  // ordering cannot rule out.
  Expr remainder = a;
  Expr quotient;
  const Monomial& lead = b.terms_.back();
  for (int step = 0; step < 1000; ++step) {
    if (remainder.isZero()) return quotient;
    const Monomial& t = remainder.terms_.back();
    auto q = divideMonomial(t, lead);
    if (!q) return std::nullopt;
    Expr qe;
    qe.addMonomial(std::move(*q));
    qe.normalizeSort();
    quotient += qe;
    remainder -= qe * b;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

bool operator==(const Expr& a, const Expr& b) { return a.compare(b) == 0; }

int Expr::compare(const Expr& other) const {
  const std::size_t n = std::min(terms_.size(), other.terms_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int k = compareMonomialKey(terms_[i], other.terms_[i]);
    if (k != 0) return k;
    const Rational& ca = terms_[i].coeff();
    const Rational& cb = other.terms_[i].coeff();
    if (ca != cb) return ca < cb ? -1 : 1;
  }
  if (terms_.size() != other.terms_.size()) return terms_.size() < other.terms_.size() ? -1 : 1;
  return 0;
}

// ---------------------------------------------------------------------------
// Free symbols, substitution, evaluation
// ---------------------------------------------------------------------------

namespace {
void collectSymbols(const Expr& e, std::set<SymbolId>& out) {
  for (const auto& m : e.terms()) {
    for (const auto& f : m.symbols()) out.insert(f.id);
    if (m.hasPow2()) collectSymbols(m.pow2Exponent(), out);
  }
}
}  // namespace

std::vector<SymbolId> Expr::freeSymbols() const {
  std::set<SymbolId> s;
  collectSymbols(*this, s);
  return {s.begin(), s.end()};
}

bool Expr::contains(SymbolId id) const {
  for (const auto& m : terms_) {
    for (const auto& f : m.symbols_) {
      if (f.id == id) return true;
    }
    if (m.pow2_ && m.pow2_->contains(id)) return true;
  }
  return false;
}

bool Expr::hasIntegerCoefficients() const {
  return std::all_of(terms_.begin(), terms_.end(),
                     [](const Monomial& m) { return m.coeff().isInteger(); });
}

namespace {
Expr exprPow(const Expr& base, int exp) {
  AD_CHECK(exp >= 0);
  Expr r = Expr::constant(1);
  for (int i = 0; i < exp; ++i) r *= base;
  return r;
}
}  // namespace

Expr Expr::substitute(SymbolId id, const Expr& value) const {
  return substitute(std::map<SymbolId, Expr>{{id, value}});
}

Expr Expr::substitute(const std::map<SymbolId, Expr>& bindings) const {
  Expr result;
  for (const auto& m : terms_) {
    Expr term = Expr::constant(m.coeff());
    for (const auto& f : m.symbols_) {
      if (auto it = bindings.find(f.id); it != bindings.end()) {
        term *= exprPow(it->second, f.power);
      } else {
        term *= exprPow(Expr::symbol(f.id), f.power);
      }
    }
    if (m.pow2_) term *= Expr::pow2(m.pow2_->substitute(bindings));
    result += term;
  }
  return result;
}

Rational Expr::evaluate(const std::map<SymbolId, std::int64_t>& bindings) const {
  Rational total(0);
  for (const auto& m : terms_) {
    Rational v = m.coeff();
    for (const auto& f : m.symbols_) {
      auto it = bindings.find(f.id);
      if (it == bindings.end()) {
        throw AnalysisError("evaluate: unbound symbol id " + std::to_string(f.id));
      }
      v *= Rational(checkedIPow(it->second, f.power));
    }
    if (m.pow2_) {
      const Rational e = m.pow2_->evaluate(bindings);
      if (!e.isInteger()) throw AnalysisError("evaluate: non-integer pow2 exponent");
      v *= pow2Rational(e.asInteger());
    }
    total += v;
  }
  return total;
}

std::optional<std::pair<Expr, Expr>> Expr::linearDecompose(SymbolId sym) const {
  Expr a;  // coefficient of sym
  Expr b;  // remainder
  for (const auto& m : terms_) {
    if (m.pow2_ && m.pow2_->contains(sym)) return std::nullopt;
    int power = 0;
    Monomial stripped(m.coeff_);
    for (const auto& f : m.symbols_) {
      if (f.id == sym) {
        power = f.power;
      } else {
        stripped.symbols_.push_back(f);
      }
    }
    stripped.pow2_ = m.pow2_;
    Expr piece;
    piece.addMonomial(std::move(stripped));
    piece.normalizeSort();
    if (power == 0) {
      b += piece;
    } else if (power == 1) {
      a += piece;
    } else {
      return std::nullopt;
    }
  }
  return std::make_pair(std::move(a), std::move(b));
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

namespace {

/// Factor of the 2-adic valuation: value = 2^k * rest with rest odd.
std::pair<std::int64_t, std::int64_t> splitPow2(std::int64_t v) {
  std::int64_t k = 0;
  while (v != 0 && v % 2 == 0) {
    v /= 2;
    ++k;
  }
  return {k, v};
}

void printMonomial(std::ostream& os, const Monomial& m, const SymbolTable& table, bool leading) {
  Rational coeff = m.coeff();
  // Fold the 2-adic part of the coefficient into the displayed pow2 exponent.
  Expr shownExp;
  bool hasExp = false;
  if (m.hasPow2()) {
    auto [kn, numOdd] = splitPow2(coeff.num());
    auto [kd, denOdd] = splitPow2(coeff.den());
    coeff = Rational(numOdd, denOdd);
    shownExp = m.pow2Exponent() + Expr::constant(kn - kd);
    hasExp = true;
  }
  // Present pow2(log-symbol) factors as the original parameter name, so that
  // pow2(p - L) prints as "P*2^(-L)" when P was declared as 2^p.
  std::vector<std::pair<std::string, int>> paramFactors;
  if (hasExp) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (SymbolId id : shownExp.freeSymbols()) {
        if (table.kind(id) != SymbolKind::kLog2Parameter) continue;
        if (table.pow2ParamName(id).empty()) continue;
        auto dec = shownExp.linearDecompose(id);
        if (!dec) continue;
        auto k = dec->first.asInteger();
        if (!k || *k <= 0) continue;
        paramFactors.emplace_back(table.pow2ParamName(id), static_cast<int>(*k));
        shownExp = dec->second;
        changed = true;
        break;
      }
    }
    // If what remains is a constant, fold it back into the coefficient.
    if (auto c = shownExp.asInteger()) {
      if (*c >= -62 && *c <= 62) {
        coeff = coeff * pow2Rational(*c);
        hasExp = false;
      }
    } else if (shownExp.isZero()) {
      hasExp = false;
    }
  }

  // Sign.
  if (coeff.sign() < 0) {
    os << (leading ? "-" : " - ");
    coeff = -coeff;
  } else if (!leading) {
    os << " + ";
  }

  std::vector<std::string> factors;
  if (coeff != Rational(1) || (m.symbols().empty() && paramFactors.empty() && !hasExp)) {
    factors.push_back(coeff.str());
  }
  for (const auto& [name, power] : paramFactors) {
    factors.push_back(power == 1 ? name : name + "^" + std::to_string(power));
  }
  for (const auto& f : m.symbols()) {
    factors.push_back(f.power == 1 ? table.name(f.id)
                                   : table.name(f.id) + "^" + std::to_string(f.power));
  }
  if (hasExp) {
    const std::string es = shownExp.str(table);
    const bool simple = es.find_first_of("+- ") == std::string::npos;
    factors.push_back(simple ? "2^" + es : "2^(" + es + ")");
  }
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (i != 0) os << "*";
    os << factors[i];
  }
}

}  // namespace

std::string Expr::str(const SymbolTable& table) const {
  if (terms_.empty()) return "0";
  std::ostringstream os;
  // Print highest-degree terms first for readability.
  for (std::size_t i = terms_.size(); i-- > 0;) {
    printMonomial(os, terms_[i], table, i + 1 == terms_.size());
  }
  return os.str();
}

}  // namespace ad::sym
