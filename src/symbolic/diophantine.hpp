// Bounded linear Diophantine equations.
//
// The balanced locality condition (paper Eqs. 1-3) reduces to
//     a * p_k  =  b * p_g + c
// with chunk sizes bounded by the load-balance constraints
//     1 <= p_k <= Bk,   1 <= p_g <= Bg.
// This module solves that system exactly over the integers and exposes the
// whole (affine one-parameter) solution family, because the ILP stage wants
// to search over it, not just test feasibility.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace ad::sym {

struct IntRange {
  std::int64_t lo = 1;
  std::int64_t hi = 1;

  [[nodiscard]] bool contains(std::int64_t v) const noexcept { return lo <= v && v <= hi; }
};

/// Solution family for a*x = b*y + c with x in xr, y in yr:
/// x = x0 + xStep*t, y = y0 + yStep*t for integer t in [tLo, tHi].
struct DiophantineFamily {
  std::int64_t x0 = 0;
  std::int64_t y0 = 0;
  std::int64_t xStep = 0;
  std::int64_t yStep = 0;
  std::int64_t tLo = 0;
  std::int64_t tHi = -1;  // empty when tHi < tLo

  [[nodiscard]] bool feasible() const noexcept { return tHi >= tLo; }
  [[nodiscard]] std::int64_t count() const noexcept { return feasible() ? tHi - tLo + 1 : 0; }
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> at(std::int64_t t) const;
  /// The solution with the smallest x value.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> smallestX() const;
  /// The solution with the largest x value.
  [[nodiscard]] std::pair<std::int64_t, std::int64_t> largestX() const;
  /// Enumerate up to `maxCount` solutions (in increasing t).
  [[nodiscard]] std::vector<std::pair<std::int64_t, std::int64_t>> enumerate(
      std::size_t maxCount) const;
};

/// Extended gcd: returns g = gcd(a, b) and (s, t) with s*a + t*b = g.
struct ExtendedGcd {
  std::int64_t g = 0;
  std::int64_t s = 0;
  std::int64_t t = 0;
};
[[nodiscard]] ExtendedGcd extendedGcd(std::int64_t a, std::int64_t b);

/// Solve a*x = b*y + c over integers with x in xr and y in yr. Requires
/// a != 0 and b != 0. Returns the bounded solution family (possibly empty).
[[nodiscard]] DiophantineFamily solveLinear2(std::int64_t a, std::int64_t b, std::int64_t c,
                                             IntRange xr, IntRange yr);

}  // namespace ad::sym
