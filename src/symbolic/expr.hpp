// Symbolic integer expressions for access-descriptor algebra.
//
// The descriptors in the paper contain non-affine entries such as
//   2^(L-1) * J,   P * 2^(-L),   (P-2) * 2^(-L) + 1
// so the engine works over a normal form that makes those canonical:
//
//   Expr      = sum of Monomials (sorted, like terms combined)
//   Monomial  = Rational coefficient
//             * product of Symbol^k factors (k >= 1, sorted by symbol)
//             * at most one pow2(e) factor, e an Expr whose constant term is
//               zero (integer constant parts of exponents are folded into the
//               rational coefficient: pow2(L-1) == (1/2) * pow2(L)).
//
// Parameters that the source declares as powers of two (P = 2^p in TFFT2)
// are canonicalized to pow2(logSymbol), which is what makes identities like
// 2^(p-1) == P/2 fall out of the normal form.
//
// Exprs are immutable values; all operations return new Exprs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "support/rational.hpp"

namespace ad::sym {

using SymbolId = std::uint32_t;

enum class SymbolKind {
  kParameter,      ///< runtime-constant problem parameter (P, Q, H, N, ...)
  kIndex,          ///< loop index variable
  kLog2Parameter,  ///< the exponent symbol of a power-of-two parameter
};

/// Registry of symbols. Each Expr is interpreted relative to one table.
class SymbolTable {
 public:
  /// Interns a plain parameter symbol (idempotent for the same name).
  SymbolId parameter(const std::string& name);
  /// Interns a loop-index symbol.
  SymbolId index(const std::string& name);
  /// Declares `name` to be a power-of-two parameter with exponent symbol
  /// `logName`; returns the id of the *log* symbol. Uses of the parameter
  /// should be built with Expr::pow2(symbol(log)) — see makeSymbolExpr.
  SymbolId pow2Parameter(const std::string& name, const std::string& logName);

  [[nodiscard]] std::optional<SymbolId> lookup(const std::string& name) const;
  [[nodiscard]] const std::string& name(SymbolId id) const;
  [[nodiscard]] SymbolKind kind(SymbolId id) const;
  /// For a log2 symbol, the name of the pow2 parameter it represents (e.g.
  /// "P" for p); empty if none.
  [[nodiscard]] const std::string& pow2ParamName(SymbolId id) const;
  /// If `name` was declared via pow2Parameter, its log symbol.
  [[nodiscard]] std::optional<SymbolId> log2SymbolOf(const std::string& name) const;
  [[nodiscard]] std::size_t size() const noexcept { return infos_.size(); }

 private:
  struct Info {
    std::string name;
    SymbolKind kind;
    std::string pow2ParamName;  // only for kLog2Parameter
  };
  SymbolId intern(const std::string& name, SymbolKind kind);

  std::vector<Info> infos_;
  std::map<std::string, SymbolId> byName_;
};

class Expr;

/// One symbol raised to a positive integer power.
struct SymbolFactor {
  SymbolId id = 0;
  int power = 1;

  friend bool operator==(const SymbolFactor&, const SymbolFactor&) = default;
};

/// coeff * prod(sym^k) * pow2(exponent).
class Monomial {
 public:
  Monomial() = default;
  explicit Monomial(Rational coeff) : coeff_(coeff) {}

  [[nodiscard]] const Rational& coeff() const noexcept { return coeff_; }
  [[nodiscard]] const std::vector<SymbolFactor>& symbols() const noexcept { return symbols_; }
  [[nodiscard]] bool hasPow2() const noexcept { return pow2_ != nullptr; }
  /// The pow2 exponent (constant term is always zero). Requires hasPow2().
  [[nodiscard]] const Expr& pow2Exponent() const;
  [[nodiscard]] bool isConstant() const noexcept { return symbols_.empty() && !hasPow2(); }
  /// True if the two monomials have identical symbol/pow2 parts (coefficients
  /// may differ) — i.e. they are "like terms".
  [[nodiscard]] bool sameKey(const Monomial& other) const;
  /// Total order on keys for canonical sorting. Ignores coefficients.
  [[nodiscard]] int compareKey(const Monomial& other) const;

 private:
  friend class Expr;
  Rational coeff_ = Rational(0);
  std::vector<SymbolFactor> symbols_;       // sorted by id, powers >= 1
  std::shared_ptr<const Expr> pow2_;        // nullptr when absent
};

class Expr {
 public:
  /// Zero.
  Expr() = default;

  // -- constructors ---------------------------------------------------------
  [[nodiscard]] static Expr constant(std::int64_t value);
  [[nodiscard]] static Expr constant(Rational value);
  [[nodiscard]] static Expr symbol(SymbolId id);
  /// 2^exponent. The exponent's integer constant part is folded into the
  /// coefficient; pow2 of a pure constant becomes a rational constant.
  [[nodiscard]] static Expr pow2(const Expr& exponent);

  // -- queries --------------------------------------------------------------
  [[nodiscard]] bool isZero() const noexcept { return terms_.empty(); }
  [[nodiscard]] bool isConstant() const noexcept;
  /// The rational value if constant; nullopt otherwise.
  [[nodiscard]] std::optional<Rational> asConstant() const;
  /// The integer value if a constant integer; nullopt otherwise.
  [[nodiscard]] std::optional<std::int64_t> asInteger() const;
  /// The constant term of the sum (zero if none).
  [[nodiscard]] Rational constantTerm() const;
  [[nodiscard]] const std::vector<Monomial>& terms() const noexcept { return terms_; }
  /// All symbols appearing anywhere (including inside pow2 exponents).
  [[nodiscard]] std::vector<SymbolId> freeSymbols() const;
  [[nodiscard]] bool contains(SymbolId id) const;
  /// True if every monomial coefficient is an integer.
  [[nodiscard]] bool hasIntegerCoefficients() const;

  // -- arithmetic -----------------------------------------------------------
  [[nodiscard]] Expr operator-() const;
  friend Expr operator+(const Expr& a, const Expr& b);
  friend Expr operator-(const Expr& a, const Expr& b);
  friend Expr operator*(const Expr& a, const Expr& b);
  Expr& operator+=(const Expr& o) { return *this = *this + o; }
  Expr& operator-=(const Expr& o) { return *this = *this - o; }
  Expr& operator*=(const Expr& o) { return *this = *this * o; }

  /// Exact division: returns a/b when the quotient exists in the monomial
  /// algebra (multivariate division; pow2 parts always divide). nullopt if
  /// the division is not exact.
  [[nodiscard]] static std::optional<Expr> divideExact(const Expr& a, const Expr& b);

  /// Structural equality of normal forms.
  friend bool operator==(const Expr& a, const Expr& b);
  friend bool operator!=(const Expr& a, const Expr& b) { return !(a == b); }
  /// Total order (for use as map keys); consistent with ==.
  [[nodiscard]] int compare(const Expr& other) const;
  friend bool operator<(const Expr& a, const Expr& b) { return a.compare(b) < 0; }

  // -- substitution & evaluation ---------------------------------------------
  /// Replace every occurrence of `id` (including inside exponents) by `value`.
  [[nodiscard]] Expr substitute(SymbolId id, const Expr& value) const;
  [[nodiscard]] Expr substitute(const std::map<SymbolId, Expr>& bindings) const;
  /// Numeric evaluation. Every free symbol must be bound. The result can be
  /// rational (e.g. P*2^-L before the algebra cancels); callers that need an
  /// integer should check. Throws AnalysisError on unbound symbols.
  [[nodiscard]] Rational evaluate(const std::map<SymbolId, std::int64_t>& bindings) const;

  /// Decompose as a*sym + b with a and b free of `sym`. Fails if `sym` occurs
  /// non-linearly or inside a pow2 exponent.
  [[nodiscard]] std::optional<std::pair<Expr, Expr>> linearDecompose(SymbolId sym) const;

  /// Render using `table` for symbol names. Power-of-two parameters print as
  /// the parameter name where possible (pow2(p) -> "P").
  [[nodiscard]] std::string str(const SymbolTable& table) const;

 private:
  friend class Monomial;
  void addMonomial(Monomial m);
  void normalizeSort();
  [[nodiscard]] static std::optional<Monomial> divideMonomial(const Monomial& a,
                                                              const Monomial& b);
  static Monomial mulMonomial(const Monomial& a, const Monomial& b);
  static int compareMonomialKey(const Monomial& a, const Monomial& b);

  std::vector<Monomial> terms_;  // sorted by key, nonzero coeffs, unique keys
};

/// Convenience: an Expr for a named symbol, resolving pow2 parameters — if
/// `name` was declared via pow2Parameter this returns pow2(log) rather than a
/// plain symbol. Interns plain parameters on demand when `internIfMissing`.
[[nodiscard]] Expr makeSymbolExpr(SymbolTable& table, const std::string& name,
                                  bool internIfMissing = false);

}  // namespace ad::sym
