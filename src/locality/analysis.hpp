// Memory-access locality analysis (Section 4).
//
// For every (phase, array) pair this module derives the node attribute
// (R / W / R/W / P), the simplified descriptors, the overlap predicate
// (exists Delta_s), the linear "balanced side" used by the balanced locality
// condition of Eq. 1, and the storage-symmetry distances that become the
// Delta_d / Delta_r constraints of Table 2.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "descriptors/iteration_descriptor.hpp"
#include "descriptors/phase_descriptor.hpp"
#include "symbolic/diophantine.hpp"

namespace ad::loc {

/// Node attribute of an array in a phase (paper Section 4).
enum class Attr { kRead, kWrite, kReadWrite, kPrivatized };

[[nodiscard]] const char* attrName(Attr a);

/// Attribute of `array` in `phase` (P overrides R/W marking).
[[nodiscard]] Attr attributeOf(const ir::Phase& phase, const std::string& array);

/// One storage-symmetry constraint relative to the primary access pattern:
/// the ILP emits chunk*H <= distance (shifted) or chunk*H <= distance/2
/// (reverse), as in Table 2.
struct StorageConstraint {
  enum class Kind { kShifted, kReverse };
  Kind kind = Kind::kShifted;
  sym::Expr distance;  ///< Delta_d or Delta_r
};

/// The linear form UL(chunk of size n) + h = slope*n + offset for an array in
/// a phase (the building block of the balanced locality condition, Eq. 1).
/// Derived from the primary (first) descriptor term:
///   slope = |deltaP|, offset = seqMax - |deltaP| + h,
///   h = max(0, |deltaP| - span - 1).
struct BalancedSide {
  sym::Expr slope;
  sym::Expr offset;
  /// Alignment slack: when the phase has overlapping storage, the replicated
  /// halo (width Delta_s) absorbs core misalignments up to this amount, so
  /// the balanced equation holds modulo +-tolerance. Zero for exact regions.
  sym::Expr tolerance;

  [[nodiscard]] sym::Expr at(const sym::Expr& n) const { return slope * n + offset; }
};

/// Everything the LCG/ILP stages need to know about one (phase, array) pair.
struct PhaseArrayInfo {
  std::size_t phase = 0;
  std::string array;
  Attr attr = Attr::kRead;
  desc::PhaseDescriptor pd;     ///< simplified (coalesced + unioned)
  desc::IterationDescriptor id;
  /// exists Delta_s? nullopt = indeterminate (treated as "may overlap").
  std::optional<bool> overlap;
  /// The overlap width Delta_s when it exists and is provable.
  std::optional<sym::Expr> overlapDistance;
  /// nullopt when the descriptor has no usable linear form (then every
  /// incident edge is conservatively C).
  std::optional<BalancedSide> side;
  std::vector<StorageConstraint> storage;
  /// Trip count of the phase's parallel loop (upper-bound expression u+1).
  sym::Expr parallelTrip;
};

/// Runs descriptor construction + simplification + locality quantities for
/// one (phase, array) pair. The computation is purely symbolic (no processor
/// count or parameter values), so results are memoized process-wide by a
/// serialization of every input (gated on sym::ProofMemo::enabled(), shared
/// with the proof memo; the profiler attributes the cache's lock/hit traffic
/// under family "loc.phase_array").
[[nodiscard]] PhaseArrayInfo analyzePhaseArray(const ir::Program& program, std::size_t phaseIdx,
                                               const std::string& array);

/// Shared-node variant: the engine's hot path. A memo hit hands back the
/// cached immutable node itself — pointer identity, no deep copy of the
/// descriptors — and a structurally identical phase at a different position
/// gets its re-stamped variant built once and then shared too. Consumers
/// (lcg::Node, ILP, serialization) hold the node read-only; with the memo
/// disabled this computes a fresh node, so the legacy engine is unchanged.
[[nodiscard]] std::shared_ptr<const PhaseArrayInfo> analyzePhaseArrayShared(
    const ir::Program& program, std::size_t phaseIdx, const std::string& array);

/// Drops every memoized analyzePhaseArray result (bench legs use this next
/// to ProofMemo::clear() so cold-start timings are genuinely cold).
void clearPhaseArrayMemo();

/// The balanced locality condition between phases F_k and F_g for one array:
///     slopeK * p_k + offsetK == slopeG * p_g + offsetG        (Eq. 1)
///     1 <= p_k <= ceil(tripK / H), 1 <= p_g <= ceil(tripG / H) (Eqs. 2-3)
struct BalancedCondition {
  sym::Expr slopeK, offsetK, tripK;
  sym::Expr slopeG, offsetG, tripG;
  sym::Expr tolerance;  ///< halo slack: Eq. 1 holds modulo +-tolerance

  /// Paper-style rendering "p_k + 2*P*Q - P = 2*P*p_g" (constant parts of the
  /// two offsets folded left).
  [[nodiscard]] std::string render(const sym::SymbolTable& table, const std::string& pk,
                                   const std::string& pg) const;

  /// Numeric solve under parameter bindings and H processors. The returned
  /// family enumerates all (p_k, p_g) chunk pairs satisfying Eqs. 1-3.
  [[nodiscard]] sym::DiophantineFamily solve(
      const std::map<sym::SymbolId, std::int64_t>& params, std::int64_t processors) const;

  /// Feasibility shortcut.
  [[nodiscard]] bool holds(const std::map<sym::SymbolId, std::int64_t>& params,
                           std::int64_t processors) const {
    return solve(params, processors).feasible();
  }

  /// A symbolic one-parameter solution family of Eq. 1:
  ///   p_k = pk0 + pkStep * t,  p_g = pg0 + pgStep * t   (integer t >= 0),
  /// ignoring the load-balance bounds (which are what Eqs. 2-3 then test —
  /// the paper's F2-F3 discussion derives exactly such a family, p2 = P,
  /// p3 = Q, before rejecting it against the bounds).
  struct SymbolicFamily {
    sym::Expr pk0, pg0;
    sym::Expr pkStep, pgStep;
  };

  /// Symbolic solve attempt; requires one slope to divide the other exactly
  /// and the smallest positive solution to be derivable by the range
  /// analyzer. nullopt when outside that (common) class.
  [[nodiscard]] std::optional<SymbolicFamily> solveSymbolic(
      const sym::RangeAnalyzer& ra) const;
};

/// Builds the balanced condition from two analyzed sides. nullopt when either
/// side is unusable.
[[nodiscard]] std::optional<BalancedCondition> makeBalancedCondition(const PhaseArrayInfo& k,
                                                                     const PhaseArrayInfo& g);

/// Theorem 1 — intra-phase locality. Given an iteration/data placement that
/// stores each iteration's ID locally, are all accesses local?
enum class IntraPhase {
  kLocal,            ///< case (a) privatizable or (b) no overlapping storage
  kLocalReplicated,  ///< case (c): overlap, reads only — replicas suffice
  kNeedsUpdates,     ///< overlap with writes: replicas need reconciliation
  kUnknown,          ///< overlap indeterminable: treat as kNeedsUpdates
};

[[nodiscard]] const char* intraPhaseName(IntraPhase v);

/// Applies Theorem 1 to an analyzed (phase, array) pair.
[[nodiscard]] IntraPhase intraPhaseLocality(const PhaseArrayInfo& info);

/// Edge labels of the LCG (Table 1).
enum class EdgeLabel { kLocal, kComm, kUncoupled };

[[nodiscard]] const char* edgeLabelName(EdgeLabel l);

/// The Table 1 classification: given the two node attributes, whether phase
/// F_k shows overlapping storage, and whether the balanced locality condition
/// holds, returns the LCG edge label. This reproduces all 60 cells of the
/// paper's Table 1 (see bench/table1_classification).
[[nodiscard]] EdgeLabel classifyEdge(Attr attrK, Attr attrG, bool overlapK, bool balanced);

}  // namespace ad::loc
