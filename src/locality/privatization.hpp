// Privatization inference.
//
// The paper takes privatizable-array marking from the Polaris analyses of
// [10], restricted so that the array's value is dead after the phase. This
// module provides the equivalent check over the IR, evaluated exactly under
// concrete parameter bindings (the same replay machinery the property tests
// use): an array X is privatizable in phase F_k iff
//
//   (a) within every parallel iteration of F_k, each read of X happens at an
//       address that iteration has already written (no exposed reads), and
//   (b) the value of X is not live after F_k: walking forward (wrapping for
//       cyclic programs), the next phase that really uses X writes it before
//       reading any element F_k produced.
//
// Condition (b) is checked conservatively: the next accessing phase must be
// write-only on X (or privatize X itself).
#pragma once

#include "ir/walker.hpp"

namespace ad::loc {

/// Exact (binding-specific) privatizability test; see file comment.
[[nodiscard]] bool inferPrivatizable(const ir::Program& program, std::size_t phase,
                                     const std::string& array, const ir::Bindings& params);

/// Checks declared `private` markings against the inference: returns the
/// names of arrays declared privatizable in `phase` that the exact check
/// rejects (empty = all markings justified).
[[nodiscard]] std::vector<std::string> unjustifiedPrivatizations(const ir::Program& program,
                                                                 std::size_t phase,
                                                                 const ir::Bindings& params);

}  // namespace ad::loc
