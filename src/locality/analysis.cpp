#include "locality/analysis.hpp"

#include <map>
#include <mutex>
#include <sstream>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "support/budget.hpp"
#include "support/checked_int.hpp"
#include "support/diagnostics.hpp"
#include "symbolic/intern.hpp"

namespace ad::loc {

using sym::Expr;

const char* attrName(Attr a) {
  switch (a) {
    case Attr::kRead:
      return "R";
    case Attr::kWrite:
      return "W";
    case Attr::kReadWrite:
      return "R/W";
    case Attr::kPrivatized:
      return "P";
  }
  AD_UNREACHABLE("bad Attr");
}

Attr attributeOf(const ir::Phase& phase, const std::string& array) {
  if (phase.isPrivatized(array)) return Attr::kPrivatized;
  const bool r = phase.reads(array);
  const bool w = phase.writes(array);
  AD_REQUIRE(r || w, "phase '" + phase.name() + "' does not access '" + array + "'");
  if (r && w) return Attr::kReadWrite;
  return r ? Attr::kRead : Attr::kWrite;
}

const char* edgeLabelName(EdgeLabel l) {
  switch (l) {
    case EdgeLabel::kLocal:
      return "L";
    case EdgeLabel::kComm:
      return "C";
    case EdgeLabel::kUncoupled:
      return "D";
  }
  AD_UNREACHABLE("bad EdgeLabel");
}

// ---------------------------------------------------------------------------
// Per-(phase, array) analysis
// ---------------------------------------------------------------------------

namespace {

/// |deltaP| of a term, with a provable sign. nullopt if indeterminate.
std::optional<Expr> absDeltaP(const Expr& deltaP, const sym::RangeAnalyzer& ra) {
  if (ra.proveNonNegative(deltaP)) return deltaP;
  if (ra.proveNonPositive(deltaP)) return -deltaP;
  return std::nullopt;
}

std::optional<BalancedSide> computeSide(const desc::PDTerm& primary, bool overlap,
                                        const std::optional<Expr>& overlapDist,
                                        const sym::RangeAnalyzer& ra) {
  if (!primary.hasParallel || primary.deltaP.isZero()) {
    // No parallel advance: the "region per chunk" is constant; model as
    // slope 0 so the balanced condition degenerates to offset equality.
    return BalancedSide{Expr(), primary.seqMax, Expr()};
  }
  const auto a = absDeltaP(primary.deltaP, ra);
  if (!a) return std::nullopt;
  if (overlap) {
    // Overlapping storage: the halo beyond the owned core is replicated
    // (Theorem 1c), so the balanced condition compares the cores — |a|
    // addresses per iteration starting at seqMin — and tolerates core
    // misalignment up to the replicated halo width:
    // side(n) = a*n + seqMin - 1  (mod +-Delta_s).
    if (!overlapDist) return std::nullopt;  // unknown halo: conservative
    return BalancedSide{*a, primary.seqMin - Expr::constant(1), *overlapDist};
  }
  // h = max(0, |a| - span - 1); needs a provable sign to pick the branch.
  const Expr slack = *a - primary.seqSpan() - Expr::constant(1);
  Expr h;
  if (ra.proveNonNegative(slack)) {
    h = slack;
  } else if (ra.proveNonPositive(slack)) {
    h = Expr();
  } else {
    return std::nullopt;
  }
  // side(n) = UL(chunk n) + h = a*(n-1) + seqMax + h = a*n + (seqMax - a + h).
  // The memory gap doubles as alignment slack: the region end can sit
  // anywhere within the gap and stay inside its iteration tile.
  return BalancedSide{*a, primary.seqMax - *a + h, h};
}

std::vector<StorageConstraint> computeStorage(const desc::IterationDescriptor& id,
                                              const sym::RangeAnalyzer& ra) {
  std::vector<StorageConstraint> out;
  for (std::size_t j = 1; j < id.terms().size(); ++j) {
    const auto s = id.symmetry(0, j, ra);
    if (s.shifted) {
      out.push_back(StorageConstraint{StorageConstraint::Kind::kShifted, *s.shifted});
    } else if (s.reverse) {
      out.push_back(StorageConstraint{StorageConstraint::Kind::kReverse, *s.reverse});
    }
  }
  return out;
}

/// Process-wide memo of analyzePhaseArray results. The whole function is a
/// pure symbolic computation — no processor count, no parameter values — so
/// its result is a function of the serialized inputs below. The batched
/// engine re-asks the same (phase, array) question constantly: the same code
/// analyzed at several processor counts, and structurally identical loop
/// nests recurring across the codes of a batch (the contention profiler
/// showed lcg.build dominated by these repeats). Shard index feeds profiler
/// family "loc.phase_array"; traffic is exported as ad.loc.phase_hits /
/// ad.loc.phase_misses.
/// The memo key: exact serialization plus its hash, FNV-continued from the
/// Assumptions' cached memoKey so the dominant prefix is never rehashed.
struct PhaseKey {
  std::string text;
  std::uint64_t hash = 0;
};

class PhaseArrayMemo {
 public:
  static PhaseArrayMemo& global() {
    static PhaseArrayMemo instance;
    return instance;
  }

  std::shared_ptr<const PhaseArrayInfo> lookup(const PhaseKey& key, std::size_t phaseIdx) {
    const std::size_t idx = shardIndexFor(key);
    Shard& shard = shards_[idx];
    obs::ShardLock lock(shard.mu, obs::ShardFamily::kPhaseInfo, idx);
    std::size_t steps = 0;
    if (const auto it = shard.infos.find(key.hash); it != shard.infos.end()) {
      // Exact-text compare only within the hash bucket: a hit costs one
      // string compare and hands back the cached node itself — no deep copy.
      for (Entry& entry : it->second) {
        ++steps;
        if (entry.text == key.text) {
          noteProbe(idx, true, steps);
          if (const auto vit = entry.byPhase.find(phaseIdx); vit != entry.byPhase.end()) {
            return vit->second;
          }
          // Structurally identical phase at a new position: build the
          // re-stamped variant once, then every later hit shares it. Any
          // existing variant works as the source — they differ only in the
          // embedded index, so the result is position-deterministic.
          auto restamped = restampedVariant(*entry.byPhase.begin()->second, phaseIdx);
          entry.byPhase.emplace(phaseIdx, restamped);
          return restamped;
        }
      }
    }
    noteProbe(idx, false, steps == 0 ? 1 : steps);
    return nullptr;
  }

  void store(const PhaseKey& key, std::size_t phaseIdx,
             const std::shared_ptr<const PhaseArrayInfo>& info) {
    const std::size_t idx = shardIndexFor(key);
    Shard& shard = shards_[idx];
    obs::ShardLock lock(shard.mu, obs::ShardFamily::kPhaseInfo, idx);
    auto& bucket = shard.infos[key.hash];
    for (Entry& entry : bucket) {
      if (entry.text == key.text) {
        entry.byPhase.try_emplace(phaseIdx, info);  // racing writer beat us; same value
        return;
      }
    }
    Entry entry;
    entry.text = key.text;
    entry.byPhase.emplace(phaseIdx, info);
    bucket.push_back(std::move(entry));
  }

  void clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.infos.clear();
    }
  }

 private:
  static constexpr std::size_t kShards = 16;
  /// One structural phase; `byPhase` holds the canonical node plus its
  /// re-stamped variants, one per program position the phase was seen at.
  struct Entry {
    std::string text;
    std::map<std::size_t, std::shared_ptr<const PhaseArrayInfo>> byPhase;
  };
  /// Copy of `src` with the embedded phase index replaced; only the
  /// descriptors carry the index, the terms are position-independent.
  [[nodiscard]] static std::shared_ptr<const PhaseArrayInfo> restampedVariant(
      const PhaseArrayInfo& src, std::size_t phaseIdx) {
    auto out = std::make_shared<PhaseArrayInfo>(src);
    out->phase = phaseIdx;
    out->pd = desc::PhaseDescriptor(src.pd.array(), phaseIdx,
                                    std::vector<desc::PDTerm>(src.pd.terms()));
    out->id = desc::IterationDescriptor(src.id.array(), phaseIdx,
                                        std::vector<desc::IDTerm>(src.id.terms()));
    return out;
  }
  struct alignas(64) Shard {
    std::mutex mu;
    std::map<std::uint64_t, std::vector<Entry>> infos;
  };
  [[nodiscard]] static std::size_t shardIndexFor(const PhaseKey& key) {
    return key.hash % kShards;
  }
  static void noteProbe(std::size_t idx, bool hit, std::size_t steps) {
    static obs::Counter& hits = obs::metrics().counter("ad.loc.phase_hits");
    static obs::Counter& misses = obs::metrics().counter("ad.loc.phase_misses");
    (hit ? hits : misses).add(1);
    obs::Profiler& p = obs::profiler();
    if (!p.enabled()) return;
    obs::ShardStats& stats = p.shard(obs::ShardFamily::kPhaseInfo, idx);
    (hit ? stats.hits : stats.misses).fetch_add(1, std::memory_order_relaxed);
    stats.probeSteps.fetch_add(static_cast<std::int64_t>(steps), std::memory_order_relaxed);
  }
  Shard shards_[kShards];
};

/// Everything analyzePhaseArray reads, serialized: the assumptions context
/// (symbol kinds, bounds, facts), the loop nest (order, indices, bounds,
/// DOALL marking), the references to this array (kind + subscript, textual
/// order), the privatized flag, and the array name (which the result embeds
/// verbatim). The phase *index* is deliberately absent: the analysis never
/// reads it, so structurally identical phases hit the same entry wherever
/// they sit — in one code or across codes — and the hit path re-stamps the
/// index into the returned descriptors.
PhaseKey phaseArrayKey(const ir::Program& program, std::size_t phaseIdx,
                       const std::string& array, const sym::Assumptions& assumptions) {
  const ir::Phase& phase = program.phase(phaseIdx);
  const sym::Assumptions::MemoKey& base = assumptions.memoKey();  // cached, not rebuilt
  PhaseKey out;
  out.text = base.text;
  out.text += '#';
  out.text += array;
  out.text += phase.isPrivatized(array) ? "#P" : "#-";
  for (const auto& loop : phase.loops()) {
    out.text += 'l';
    out.text += std::to_string(loop.index);
    out.text += loop.parallel ? '*' : '.';
    sym::serializeExpr(loop.lower, out.text);
    sym::serializeExpr(loop.upper, out.text);
  }
  for (const auto& ref : phase.refsTo(array)) {
    out.text += ref.kind == ir::AccessKind::kRead ? 'r' : 'w';
    sym::serializeExpr(ref.subscript, out.text);
  }
  // FNV-1a is sequential, so continuing from the cached prefix hash over the
  // suffix bytes equals hashing the full key — without retouching the prefix.
  std::uint64_t h = base.hash;
  for (std::size_t i = base.text.size(); i < out.text.size(); ++i) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(out.text[i]));
    h *= 1099511628211ULL;
  }
  // Under the degenerate-hash hook this cache collapses to one shard/bucket
  // like the interner, so the hash-quality tests cover it too.
  out.hash = sym::detail::degenerateHashForced() ? 0 : h;
  return out;
}

}  // namespace

void clearPhaseArrayMemo() { PhaseArrayMemo::global().clear(); }

std::shared_ptr<const PhaseArrayInfo> analyzePhaseArrayShared(const ir::Program& program,
                                                              std::size_t phaseIdx,
                                                              const std::string& array) {
  obs::Span span("locality.analyze_phase_array", "analysis");
  const ir::Phase& phase = program.phase(phaseIdx);
  const sym::Assumptions assumptions = phase.assumptions(program.symbols());
  // Memoized path (same toggle as the proof memo, so the serial-baseline
  // legs and memo-sensitive tests stay honest). Cached values were computed
  // with an unexhausted budget, so serving them under any budget is sound.
  const bool memoized = sym::ProofMemo::enabled();
  PhaseKey key;
  if (memoized) {
    key = phaseArrayKey(program, phaseIdx, array, assumptions);
    if (auto cached = PhaseArrayMemo::global().lookup(key, phaseIdx)) return cached;
  }
  const sym::RangeAnalyzer ra(assumptions);

  auto pd = desc::buildPhaseDescriptor(program, phaseIdx, array);
  desc::coalesceStrides(pd, ra);
  desc::unionTerms(pd, ra);
  auto id = desc::buildIterationDescriptor(pd);

  PhaseArrayInfo info{phaseIdx,
                      array,
                      attributeOf(phase, array),
                      pd,
                      id,
                      id.hasOverlap(ra),
                      id.overlapDistance(ra),
                      std::nullopt,
                      computeStorage(id, ra),
                      Expr()};
  if (!pd.terms().empty() && info.overlap.has_value()) {
    info.side = computeSide(pd.terms().front(), *info.overlap, info.overlapDistance, ra);
  }
  if (phase.hasParallelLoop()) {
    const auto& par = phase.parallelLoop();
    info.parallelTrip = par.upper - par.lower + Expr::constant(1);
  } else {
    info.parallelTrip = Expr::constant(1);
  }
  auto node = std::make_shared<const PhaseArrayInfo>(std::move(info));
  // Never cache a result shaped by an exhausted budget: later unlimited runs
  // must not inherit its conservative simplifications.
  if (memoized && !support::budgetCompromised()) {
    PhaseArrayMemo::global().store(key, phaseIdx, node);
  }
  return node;
}

PhaseArrayInfo analyzePhaseArray(const ir::Program& program, std::size_t phaseIdx,
                                 const std::string& array) {
  return *analyzePhaseArrayShared(program, phaseIdx, array);
}

// ---------------------------------------------------------------------------
// Balanced condition
// ---------------------------------------------------------------------------

std::optional<BalancedCondition> makeBalancedCondition(const PhaseArrayInfo& k,
                                                       const PhaseArrayInfo& g) {
  if (!k.side || !g.side) return std::nullopt;
  // Each side's slack (halo or gap) absorbs misalignment independently.
  const Expr tol = k.side->tolerance + g.side->tolerance;
  return BalancedCondition{k.side->slope,  k.side->offset, k.parallelTrip,
                           g.side->slope,  g.side->offset, g.parallelTrip, tol};
}

std::string BalancedCondition::render(const sym::SymbolTable& table, const std::string& pk,
                                      const std::string& pg) const {
  // slopeK*pk + (offsetK - offsetG) = slopeG*pg, paper style (Eq. 4 keeps the
  // constant on the left).
  std::ostringstream os;
  const Expr c = offsetK - offsetG;
  const auto coefStr = [&](const Expr& e) {
    if (auto v = e.asInteger(); v && *v == 1) return std::string();
    return e.str(table) + "*";
  };
  if (slopeK.isZero()) {
    os << "0";
  } else {
    os << coefStr(slopeK) << pk;
  }
  if (!c.isZero()) os << " + " << c.str(table);
  os << " = ";
  if (slopeG.isZero()) {
    os << "0";
  } else {
    os << coefStr(slopeG) << pg;
  }
  return os.str();
}

sym::DiophantineFamily BalancedCondition::solve(
    const std::map<sym::SymbolId, std::int64_t>& params, std::int64_t processors) const {
  AD_REQUIRE(processors >= 1, "need at least one processor");
  const auto evalInt = [&](const Expr& e, const char* what) {
    const Rational r = e.evaluate(params);
    if (!r.isInteger()) throw AnalysisError(std::string(what) + " is not integral");
    return r.asInteger();
  };
  const std::int64_t aK = evalInt(slopeK, "slope of F_k");
  const std::int64_t aG = evalInt(slopeG, "slope of F_g");
  const std::int64_t c = evalInt(offsetG - offsetK, "offset difference");
  const std::int64_t tol = tolerance.isZero() ? 0 : evalInt(tolerance, "tolerance");
  const std::int64_t bK = ceilDiv(evalInt(tripK, "trip count of F_k"), processors);
  const std::int64_t bG = ceilDiv(evalInt(tripG, "trip count of F_g"), processors);
  sym::DiophantineFamily none;
  if (bK < 1 || bG < 1) return none;

  const auto singleton = [](std::int64_t x, std::int64_t y) {
    sym::DiophantineFamily fam;
    fam.x0 = x;
    fam.y0 = y;
    fam.xStep = 0;
    fam.yStep = 0;
    fam.tLo = 0;
    fam.tHi = 0;
    return fam;
  };

  if (aK == 0 && aG == 0) {
    // Degenerate: both regions are fixed; balanced iff identical (mod halo).
    if (c >= -tol && c <= tol) return singleton(1, 1);
    return none;
  }
  if (aK == 0 || aG == 0) {
    // One fixed region: p on the other side must make up the difference
    // within the halo slack.
    const std::int64_t a = aK == 0 ? aG : aK;
    const std::int64_t rhs = aK == 0 ? -c : c;
    const std::int64_t bound = aK == 0 ? bG : bK;
    for (std::int64_t cc = rhs - tol; cc <= rhs + tol; ++cc) {
      if (cc % a != 0) continue;
      const std::int64_t pv = cc / a;
      if (pv < 1 || pv > bound) continue;
      return aK == 0 ? singleton(1, pv) : singleton(pv, 1);
    }
    return none;
  }
  // aK*pk - aG*pg = c' for some c' within the halo tolerance of c. Values of
  // the left side form the gcd lattice, so only multiples of g can match;
  // candidates are tried nearest-to-exact first so that chains of edges pick
  // mutually consistent offsets.
  const std::int64_t g = gcd64(aK, aG);
  const std::int64_t base = checkedMul(g, floorDiv(c + g / 2, g));  // nearest multiple of g
  for (std::int64_t k = 0;; ++k) {
    bool anyInWindow = false;
    for (const std::int64_t cc : {base + g * k, base - g * k}) {
      if (cc < c - tol || cc > c + tol) continue;
      anyInWindow = true;
      const auto fam = sym::solveLinear2(aK, aG, cc, {1, bK}, {1, bG});
      if (fam.feasible()) return fam;
      if (k == 0) break;  // +0 and -0 are the same candidate
    }
    if (!anyInWindow && g * k > tol + g) break;
  }
  return none;
}

// ---------------------------------------------------------------------------
// Theorem 1
// ---------------------------------------------------------------------------

const char* intraPhaseName(IntraPhase v) {
  switch (v) {
    case IntraPhase::kLocal:
      return "local";
    case IntraPhase::kLocalReplicated:
      return "local (replicated overlap)";
    case IntraPhase::kNeedsUpdates:
      return "needs update communication";
    case IntraPhase::kUnknown:
      return "unknown (conservative)";
  }
  AD_UNREACHABLE("bad IntraPhase");
}

IntraPhase intraPhaseLocality(const PhaseArrayInfo& info) {
  // (a) privatizable: each processor works on its own copy.
  if (info.attr == Attr::kPrivatized) return IntraPhase::kLocal;
  // (b) non-privatizable without overlapping storage.
  if (info.overlap.has_value() && !*info.overlap) return IntraPhase::kLocal;
  if (!info.overlap.has_value()) return IntraPhase::kUnknown;
  // (c) overlapping storage: reads only leave the replicas consistent.
  if (info.attr == Attr::kRead) return IntraPhase::kLocalReplicated;
  return IntraPhase::kNeedsUpdates;
}

// ---------------------------------------------------------------------------
// Symbolic solve (the paper's Eq. 4 manipulation)
// ---------------------------------------------------------------------------

namespace {

/// Rebuild a monomial as an Expr (mirrors the helper in ranges.cpp).
Expr monomialAsExpr(const sym::Monomial& m) {
  Expr e = Expr::constant(m.coeff());
  for (const auto& f : m.symbols()) {
    for (int i = 0; i < f.power; ++i) e *= Expr::symbol(f.id);
  }
  if (m.hasPow2()) e *= Expr::pow2(m.pow2Exponent());
  return e;
}

/// ceil(num / den) for a provably positive symbolic den: candidates are
/// built by dropping the fractional-coefficient monomials of the exact
/// quotient and verified with the range analyzer.
std::optional<Expr> symbolicCeilDiv(const Expr& num, const Expr& den,
                                    const sym::RangeAnalyzer& ra) {
  if (!ra.provePositive(den)) return std::nullopt;
  const auto q = Expr::divideExact(num, den);
  if (!q) return std::nullopt;
  if (ra.proveIntegerValued(*q)) return q;
  Expr base;
  for (const auto& m : q->terms()) {
    if (m.coeff().isInteger()) base += monomialAsExpr(m);
  }
  for (std::int64_t k = -1; k <= 2; ++k) {
    const Expr cand = base + Expr::constant(k);
    // cand == ceil(num/den)  <=>  den*cand >= num  and  den*(cand-1) < num.
    if (ra.proveLE(num, den * cand) &&
        ra.proveLT(den * (cand - Expr::constant(1)), num)) {
      return cand;
    }
  }
  return std::nullopt;
}

/// max(1, e), decided symbolically.
std::optional<Expr> atLeastOne(const Expr& e, const sym::RangeAnalyzer& ra) {
  if (ra.proveLE(Expr::constant(1), e)) return e;
  if (ra.proveLE(e, Expr::constant(1))) return Expr::constant(1);
  return std::nullopt;
}

}  // namespace

std::optional<BalancedCondition::SymbolicFamily> BalancedCondition::solveSymbolic(
    const sym::RangeAnalyzer& ra) const {
  const Expr c = offsetG - offsetK;
  if (slopeK.isZero() || slopeG.isZero()) return std::nullopt;

  // Orientation 1: slopeK divides slopeG — pk = r*t + c/slopeK, pg = t.
  if (auto r = Expr::divideExact(slopeG, slopeK)) {
    // One arena handle feeds both predicates: the ratio is interned once and
    // each memo probe is a pointer lookup.
    const sym::InternedExpr rh = sym::ExprIntern::global().intern(*r);
    if (ra.proveIntegerValued(rh) && ra.provePositive(rh)) {
      const auto cK = Expr::divideExact(c, slopeK);
      if (cK && ra.proveIntegerValued(*cK)) {
        // t >= ceil((1 - cK)/r) keeps pk >= 1.
        const auto tlo = symbolicCeilDiv(Expr::constant(1) - *cK, *r, ra);
        if (tlo) {
          if (const auto tmin = atLeastOne(*tlo, ra)) {
            return SymbolicFamily{*r * *tmin + *cK, *tmin, *r, Expr::constant(1)};
          }
        }
      }
    }
  }
  // Orientation 2: slopeG divides slopeK — pk = t, pg = r*t - c/slopeG.
  if (auto r = Expr::divideExact(slopeK, slopeG)) {
    const sym::InternedExpr rh = sym::ExprIntern::global().intern(*r);
    if (ra.proveIntegerValued(rh) && ra.provePositive(rh)) {
      const auto cG = Expr::divideExact(c, slopeG);
      if (cG && ra.proveIntegerValued(*cG)) {
        const auto tlo = symbolicCeilDiv(Expr::constant(1) + *cG, *r, ra);
        if (tlo) {
          if (const auto tmin = atLeastOne(*tlo, ra)) {
            return SymbolicFamily{*tmin, *r * *tmin - *cG, Expr::constant(1), *r};
          }
        }
      }
    }
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------------
// Table 1 classifier
// ---------------------------------------------------------------------------

EdgeLabel classifyEdge(Attr attrK, Attr attrG, bool overlapK, bool balanced) {
  const bool kPriv = attrK == Attr::kPrivatized;
  const bool gPriv = attrG == Attr::kPrivatized;
  if (kPriv || gPriv) {
    // Un-coupled (D) in every case except a write phase with overlapping
    // storage feeding a privatizing phase: the replicated overlap regions
    // would hold stale values and must be reconciled (Table 1 row W-P).
    if (!kPriv && attrK == Attr::kWrite && overlapK) return EdgeLabel::kComm;
    return EdgeLabel::kUncoupled;
  }
  // A writing phase with overlapping storage cannot satisfy the intra-phase
  // locality condition (Theorem 1c requires read-only overlap), so every
  // outgoing edge communicates.
  if (attrK == Attr::kWrite && overlapK) return EdgeLabel::kComm;
  return balanced ? EdgeLabel::kLocal : EdgeLabel::kComm;
}

}  // namespace ad::loc
