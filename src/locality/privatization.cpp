#include "locality/privatization.hpp"

#include <set>

#include "support/budget.hpp"
#include "support/diagnostics.hpp"
#include "support/fault.hpp"

namespace ad::loc {

namespace {

/// (a) no exposed reads: within each parallel iteration, reads only touch
/// addresses previously written by the same iteration.
bool noExposedReads(const ir::Program& program, const ir::Phase& phase,
                    const std::string& array, const ir::Bindings& params) {
  bool exposed = false;
  std::int64_t currentIter = -1;
  std::set<std::int64_t> written;
  ir::forEachAccess(program, phase, params,
                    [&](const ir::ConcreteAccess& acc, const ir::Bindings&) {
    if (exposed || acc.ref->array != array) return;
    // The replay is O(accesses); out of budget, assume the worst (exposed).
    if (!support::budgetStep()) {
      exposed = true;
      return;
    }
    if (acc.parallelIter != currentIter) {
      currentIter = acc.parallelIter;
      written.clear();
    }
    if (acc.ref->kind == ir::AccessKind::kWrite) {
      written.insert(acc.address);
    } else if (!written.count(acc.address)) {
      exposed = true;
    }
  });
  return !exposed;
}

/// (b) dead after the phase: the next real use of the array (walking
/// forward, wrapping when cyclic but excluding the phase itself — its own
/// next-cycle reads are covered by condition (a)) writes without reading.
/// In a non-cyclic program an array nobody rewrites is a program output and
/// therefore live.
bool deadAfter(const ir::Program& program, std::size_t phase, const std::string& array) {
  const std::size_t n = program.phases().size();
  const std::size_t limit = program.cyclic() ? n - 1 : n - phase - 1;
  for (std::size_t step = 1; step <= limit; ++step) {
    const ir::Phase& ph = program.phase((phase + step) % n);
    if (ph.isPrivatized(array)) continue;  // scratch use: not a real consumer
    if (!ph.accesses(array)) continue;
    return !ph.reads(array);
  }
  // Never used again: dead for cyclic programs (the wrap already covered
  // every phase), a live program output otherwise.
  return program.cyclic();
}

}  // namespace

bool inferPrivatizable(const ir::Program& program, std::size_t phase, const std::string& array,
                       const ir::Bindings& params) {
  const ir::Phase& ph = program.phase(phase);
  if (!ph.accesses(array)) return false;
  if (!ph.writes(array)) return false;  // nothing produced locally
  const auto subject = [&] {
    return "array=" + array + " phase=F" + std::to_string(phase + 1);
  };
  // No privatization without a completed proof: an exhausted budget (or an
  // injected analysis fault) downgrades to shared placement, which is always
  // correct — it merely forfeits the D-edge decoupling.
  if (AD_FAULT_POINT("privatize.infer")) {
    support::recordDegradation("privatization", subject(), "not privatized", "fault");
    return false;
  }
  if (support::budgetCompromised()) {
    support::recordDegradation("privatization", subject(), "not privatized",
                               support::currentDegradationCause());
    return false;
  }
  const bool proved =
      noExposedReads(program, ph, array, params) && deadAfter(program, phase, array);
  if (!proved && support::budgetCompromised()) {
    support::recordDegradation("privatization", subject(), "not privatized",
                               support::currentDegradationCause());
  }
  return proved;
}

std::vector<std::string> unjustifiedPrivatizations(const ir::Program& program, std::size_t phase,
                                                   const ir::Bindings& params) {
  std::vector<std::string> bad;
  for (const auto& name : program.phase(phase).privatized()) {
    if (!inferPrivatizable(program, phase, name, params)) bad.push_back(name);
  }
  return bad;
}

}  // namespace ad::loc
