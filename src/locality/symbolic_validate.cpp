#include "locality/symbolic_validate.hpp"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "support/budget.hpp"
#include "support/checked_int.hpp"
#include "support/diagnostics.hpp"
#include "support/fault.hpp"
#include "symbolic/interval_set.hpp"

namespace ad::loc {

namespace {

using sym::ArithmeticProgression;
using sym::PeriodicIntervalSet;

/// Numeric-expansion caps: a loop the merge rules cannot collapse is unrolled
/// only up to this trip count, and a region's progression list is bounded, so
/// adversarial nests degrade to the enumerating oracle instead of exploding.
constexpr std::int64_t kEnumLoopCap = 1 << 14;
constexpr std::size_t kApListCap = 1 << 13;

std::int64_t evalInt(const sym::Expr& e, const ir::Bindings& bindings, const char* what) {
  const Rational r = e.evaluate(bindings);
  if (!r.isInteger()) throw AnalysisError(std::string(what) + " is not integral");
  return r.asInteger();
}

// ---------------------------------------------------------------------------
// Region collapse: loop-nest tail -> arithmetic progressions
// ---------------------------------------------------------------------------

struct ApList {
  std::vector<ArithmeticProgression> aps;

  [[nodiscard]] std::int64_t total() const {
    std::int64_t t = 0;
    for (const auto& ap : aps) t = checkedAdd(t, ap.total());
    return t;
  }
};

/// Folds one more loop around an already-collapsed inner region: every
/// iteration shifts the inner addresses by `step`. Exact merge rules only —
/// anything else replicates numerically (capped) or gives up.
std::optional<ApList> mergeLoop(const ApList& inner, std::int64_t step, std::int64_t n) {
  if (inner.aps.empty() || n == 1) return inner;
  if (step == 0) {
    ApList out = inner;
    for (auto& ap : out.aps) ap.repeat = checkedMul(ap.repeat, n);
    return out;
  }
  const std::int64_t astep = step < 0 ? -step : step;
  if (inner.aps.size() == 1) {
    const ArithmeticProgression& ap = inner.aps[0];
    // The lowest-address copy of the inner region across the n iterations.
    const std::int64_t loBase =
        step < 0 ? checkedAdd(ap.base, checkedMul(step, n - 1)) : ap.base;
    if (ap.count == 1) {
      return ApList{{ArithmeticProgression::make(loBase, astep, n, ap.repeat)}};
    }
    if (astep == checkedMul(ap.stride, ap.count)) {
      // Copies tile end to end: one longer progression.
      return ApList{{ArithmeticProgression::make(loBase, ap.stride,
                                                 checkedMul(ap.count, n), ap.repeat)}};
    }
    if (ap.stride == checkedMul(astep, n)) {
      // Copies interleave perfectly into a denser progression.
      return ApList{{ArithmeticProgression::make(loBase, astep,
                                                 checkedMul(ap.count, n), ap.repeat)}};
    }
  }
  if (n > kEnumLoopCap || inner.aps.size() * static_cast<std::size_t>(n) > kApListCap) {
    return std::nullopt;
  }
  ApList out;
  out.aps.reserve(inner.aps.size() * static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t shift = checkedMul(step, i);
    for (ArithmeticProgression ap : inner.aps) {
      ap.base = checkedAdd(ap.base, shift);
      out.aps.push_back(ap);
    }
  }
  return out;
}

/// Collapses loops[depth..] for one subscript under the given (params +
/// outer indices) bindings. nullopt = Unknown; the caller degrades.
std::optional<ApList> collapseTail(const std::vector<ir::Loop>& loops, std::size_t depth,
                                   const sym::Expr& subscript, ir::Bindings& bindings) {
  if (!support::budgetStep()) return std::nullopt;
  if (depth == loops.size()) {
    const std::int64_t addr = evalInt(subscript, bindings, "subscript");
    return ApList{{ArithmeticProgression::make(addr, 0, 1, 1)}};
  }
  const ir::Loop& loop = loops[depth];
  const std::int64_t lo = evalInt(loop.lower, bindings, "loop lower bound");
  const std::int64_t hi = evalInt(loop.upper, bindings, "loop upper bound");
  const std::int64_t n = hi - lo + 1;
  if (n <= 0) return ApList{};

  // Merge path: the subscript is linear in this index with a coefficient
  // that is constant over the remaining tail, and no deeper bound depends on
  // this index — then every iteration is a pure shift of the inner region.
  bool mergeable = true;
  for (std::size_t d = depth + 1; d < loops.size() && mergeable; ++d) {
    mergeable = !loops[d].lower.contains(loop.index) && !loops[d].upper.contains(loop.index);
  }
  std::int64_t step = 0;
  if (mergeable) {
    const auto dec = subscript.linearDecompose(loop.index);
    if (!dec) {
      mergeable = false;
    } else {
      for (std::size_t d = depth + 1; d < loops.size() && mergeable; ++d) {
        mergeable = !dec->first.contains(loops[d].index);
      }
      if (mergeable) {
        const Rational coeff = dec->first.evaluate(bindings);
        if (coeff.isInteger()) {
          step = coeff.asInteger();
        } else {
          mergeable = false;
        }
      }
    }
  }
  if (mergeable) {
    bindings[loop.index] = lo;
    auto inner = collapseTail(loops, depth + 1, subscript, bindings);
    bindings.erase(loop.index);
    if (!inner) return std::nullopt;
    return mergeLoop(*inner, step, n);
  }

  // Numeric expansion (bounded): bounds or coefficients genuinely depend on
  // this index (triangular nests, pow2 strides under an exponent loop).
  if (n > kEnumLoopCap) return std::nullopt;
  ApList out;
  for (std::int64_t v = lo; v <= hi; ++v) {
    if (!support::budgetStep()) {
      bindings.erase(loop.index);
      return std::nullopt;
    }
    bindings[loop.index] = v;
    auto inner = collapseTail(loops, depth + 1, subscript, bindings);
    if (!inner) {
      bindings.erase(loop.index);
      return std::nullopt;
    }
    if (out.aps.size() + inner->aps.size() > kApListCap) {
      bindings.erase(loop.index);
      return std::nullopt;
    }
    out.aps.insert(out.aps.end(), inner->aps.begin(), inner->aps.end());
  }
  bindings.erase(loop.index);
  return out;
}

// ---------------------------------------------------------------------------
// Locality sets, cached per (distribution, halo, pe)
// ---------------------------------------------------------------------------

class SetCache {
 public:
  /// nullptr means the folded expansion was refused (caller degrades).
  const PeriodicIntervalSet* get(const dsm::DataDistribution& dist, std::int64_t processors,
                                 std::int64_t pe, std::int64_t halo) {
    const Key key{static_cast<int>(dist.kind), dist.block, dist.fold, halo, pe};
    auto it = cache_.find(key);
    if (it == cache_.end()) {
      std::shared_ptr<const PeriodicIntervalSet> set;
      if (dist.kind == dsm::DataDistribution::Kind::kBlockCyclic) {
        set = std::make_shared<const PeriodicIntervalSet>(
            sym::localIntervals(dist.block, processors, pe, halo));
      } else {
        auto folded = sym::foldedLocalIntervals(dist.block, dist.fold, processors, pe, halo);
        if (folded) set = std::make_shared<const PeriodicIntervalSet>(std::move(*folded));
      }
      it = cache_.emplace(key, std::move(set)).first;
    }
    return it->second.get();
  }

 private:
  using Key = std::tuple<int, std::int64_t, std::int64_t, std::int64_t, std::int64_t>;
  std::map<Key, std::shared_ptr<const PeriodicIntervalSet>> cache_;
};

// ---------------------------------------------------------------------------
// Per-phase access counting
// ---------------------------------------------------------------------------

/// Classification recipe of one reference, mirroring sim::RefSlot.
struct RefInfo {
  std::size_t slot = 0;
  bool privatized = false;
  const dsm::DataDistribution* dist = nullptr;  ///< null: privatized
  std::int64_t halo = 0;                        ///< reads only (Theorem 1c)

  [[nodiscard]] bool alwaysLocal() const {
    return privatized || dist == nullptr || !dist->hasOwner();
  }
};

std::int64_t countApsIn(const ApList& aps, const PeriodicIntervalSet* set,
                        std::int64_t shift) {
  std::int64_t local = 0;
  for (ArithmeticProgression ap : aps.aps) {
    ap.base = checkedAdd(ap.base, shift);
    local = checkedAdd(local, set == nullptr ? ap.total() : set->countAP(ap));
  }
  return local;
}

/// Counts one reference of a phase *without* a parallel loop: every access
/// runs on processor 0 (the simulator's convention for serial phases).
bool countSerialRegion(const ir::Phase& phase, const ir::ArrayRef& ref, const RefInfo& info,
                       const ir::Bindings& params, std::int64_t processors, SetCache& sets,
                       dsm::ArrayCounts& out, std::int64_t wordBytes) {
  ir::Bindings bindings = params;
  const auto aps = collapseTail(phase.loops(), 0, ref.subscript, bindings);
  if (!aps) return false;
  const PeriodicIntervalSet* set = nullptr;
  if (!info.alwaysLocal()) {
    set = sets.get(*info.dist, processors, 0, info.halo);
    if (set == nullptr) return false;
  }
  const std::int64_t total = aps->total();
  const std::int64_t local = countApsIn(*aps, set, 0);
  out.local += local;
  out.remote += total - local;
  out.remoteBytes += (total - local) * wordBytes;
  return true;
}

/// Counts one reference of a DOALL phase. The parallel index both selects the
/// executing processor (CYCLIC(chunk) schedule) and shifts the tail region;
/// when the shift is uniform the per-iteration counts are periodic with
/// period lcm(chunk * H, ownershipPeriod / gcd(|shift|, ownershipPeriod)),
/// so the whole loop costs one period plus a remainder — independent of the
/// trip count.
bool countParallelRegion(const ir::Phase& phase, const ir::ArrayRef& ref, const RefInfo& info,
                         const ir::Bindings& params, const dsm::IterationDistribution& sched,
                         std::int64_t processors, SetCache& sets, dsm::ArrayCounts& out,
                         std::int64_t wordBytes) {
  const std::size_t parPos = phase.parallelLoopPos();
  const std::vector<ir::Loop>& loops = phase.loops();
  const sym::SymbolId parSym = loops[parPos].index;

  ir::Bindings bindings = params;
  const std::function<bool(std::size_t)> run = [&](std::size_t depth) -> bool {
    if (depth < parPos) {
      const std::int64_t lo = evalInt(loops[depth].lower, bindings, "loop lower bound");
      const std::int64_t hi = evalInt(loops[depth].upper, bindings, "loop upper bound");
      if (hi - lo + 1 > kEnumLoopCap) return false;
      for (std::int64_t v = lo; v <= hi; ++v) {
        bindings[loops[depth].index] = v;
        if (!run(depth + 1)) {
          bindings.erase(loops[depth].index);
          return false;
        }
      }
      bindings.erase(loops[depth].index);
      return true;
    }

    const std::int64_t lo = evalInt(loops[parPos].lower, bindings, "parallel lower bound");
    const std::int64_t hi = evalInt(loops[parPos].upper, bindings, "parallel upper bound");
    const std::int64_t trip = hi - lo + 1;
    if (trip <= 0) return true;
    if (lo < 0) return false;  // the oracle rejects negative iterations; match it there

    // Shift-uniformity: tail bounds free of the parallel index, subscript
    // linear in it with a tail-independent integer coefficient.
    bool uniform = true;
    for (std::size_t d = parPos + 1; d < loops.size() && uniform; ++d) {
      uniform = !loops[d].lower.contains(parSym) && !loops[d].upper.contains(parSym);
    }
    std::int64_t shift = 0;
    if (uniform) {
      const auto dec = ref.subscript.linearDecompose(parSym);
      if (!dec) {
        uniform = false;
      } else {
        for (std::size_t d = parPos + 1; d < loops.size() && uniform; ++d) {
          uniform = !dec->first.contains(loops[d].index);
        }
        if (uniform) {
          const Rational coeff = dec->first.evaluate(bindings);
          if (coeff.isInteger()) {
            shift = coeff.asInteger();
          } else {
            uniform = false;
          }
        }
      }
    }

    if (uniform) {
      bindings[parSym] = lo;
      const auto aps0 = collapseTail(loops, parPos + 1, ref.subscript, bindings);
      bindings.erase(parSym);
      if (!aps0) return false;
      const std::int64_t perIter = aps0->total();
      const std::int64_t total = checkedMul(perIter, trip);
      if (info.alwaysLocal()) {
        out.local += total;
        return true;
      }
      const std::int64_t period = info.dist->kind == dsm::DataDistribution::Kind::kBlockCyclic
                                      ? checkedMul(info.dist->block, processors)
                                      : info.dist->fold;
      const std::int64_t chunkH = checkedMul(sched.chunk, processors);
      const std::int64_t smod = euclidMod(shift, period);
      const std::int64_t shiftPeriod = smod == 0 ? 1 : period / gcd64(smod, period);
      std::int64_t lambda = trip;  // fall back to full enumeration of iterations
      if (const auto l = tryMul(chunkH / gcd64(chunkH, shiftPeriod), shiftPeriod);
          l && *l > 0) {
        lambda = std::min<std::int64_t>(trip, *l);
      }
      const bool periodic = lambda < trip;
      const std::int64_t rem = periodic ? trip % lambda : 0;
      std::int64_t cycleLocal = 0;
      std::int64_t remLocal = 0;
      for (std::int64_t u = 0; u < lambda; ++u) {
        if (!support::budgetStep()) return false;
        const std::int64_t pe = sched.executor(lo + u, processors);
        const PeriodicIntervalSet* set = sets.get(*info.dist, processors, pe, info.halo);
        if (set == nullptr) return false;
        const std::int64_t l = countApsIn(*aps0, set, checkedMul(shift, u));
        cycleLocal = checkedAdd(cycleLocal, l);
        if (periodic && u < rem) remLocal = checkedAdd(remLocal, l);
      }
      const std::int64_t local =
          periodic ? checkedAdd(checkedMul(cycleLocal, trip / lambda), remLocal) : cycleLocal;
      out.local += local;
      out.remote += total - local;
      out.remoteBytes += (total - local) * wordBytes;
      return true;
    }

    // Non-uniform (triangular bounds, parallel index inside a pow2): collapse
    // the tail afresh per iteration. Still closed-form per iteration.
    if (trip > kEnumLoopCap) return false;
    for (std::int64_t v = lo; v <= hi; ++v) {
      if (!support::budgetStep()) return false;
      bindings[parSym] = v;
      const auto aps = collapseTail(loops, parPos + 1, ref.subscript, bindings);
      bindings.erase(parSym);
      if (!aps) return false;
      const std::int64_t total = aps->total();
      std::int64_t local = total;
      if (!info.alwaysLocal()) {
        const std::int64_t pe = sched.executor(v, processors);
        const PeriodicIntervalSet* set = sets.get(*info.dist, processors, pe, info.halo);
        if (set == nullptr) return false;
        local = countApsIn(*aps, set, 0);
      }
      out.local += local;
      out.remote += total - local;
      out.remoteBytes += (total - local) * wordBytes;
    }
    return true;
  };
  return run(0);
}

// ---------------------------------------------------------------------------
// Redistribution counting: exact owner-run walk over one pattern period
// ---------------------------------------------------------------------------

std::int64_t ownerPeriod(const dsm::DataDistribution& d, std::int64_t processors) {
  return d.kind == dsm::DataDistribution::Kind::kFoldedBlockCyclic
             ? d.fold
             : checkedMul(d.block, processors);
}

/// End (exclusive) of the maximal constant-owner run containing address `a`.
std::int64_t ownerRunEnd(const dsm::DataDistribution& d, std::int64_t a) {
  if (d.kind != dsm::DataDistribution::Kind::kFoldedBlockCyclic) {
    return (a / d.block + 1) * d.block;
  }
  const std::int64_t m = a % d.fold;
  const std::int64_t base = a - m;
  const std::int64_t half = d.fold / 2;
  if (m <= half) {
    // Ascending piece: sigma(m) = m, owner constant per block of m.
    return base + std::min(half + 1, (m / d.block + 1) * d.block);
  }
  // Descending piece: sigma(m) = fold - m decreases; owner constant while
  // sigma stays inside one block, i.e. m <= fold - c*block for c = sigma/block.
  const std::int64_t c = (d.fold - m) / d.block;
  return base + std::min(d.fold, d.fold - c * d.block + 1);
}

void walkOwnerChanges(const dsm::DataDistribution& prev, const dsm::DataDistribution& next,
                      std::int64_t processors, std::int64_t limit, std::int64_t& words,
                      std::set<std::pair<std::int64_t, std::int64_t>>& pairs) {
  std::int64_t a = 0;
  while (a < limit) {
    const std::int64_t src = prev.owner(a, processors);
    const std::int64_t dst = next.owner(a, processors);
    const std::int64_t end =
        std::min({ownerRunEnd(prev, a), ownerRunEnd(next, a), limit});
    if (src != dst) {
      words += end - a;
      pairs.insert({src, dst});
    }
    a = end;
  }
}

void countRedistribution(const dsm::DataDistribution& prev, const dsm::DataDistribution& next,
                         std::int64_t size, std::int64_t processors, std::int64_t& words,
                         std::int64_t& messages) {
  words = 0;
  std::set<std::pair<std::int64_t, std::int64_t>> pairs;
  const std::int64_t p1 = ownerPeriod(prev, processors);
  const std::int64_t p2 = ownerPeriod(next, processors);
  std::int64_t lambda = size;
  if (const auto l = tryMul(p1 / gcd64(p1, p2), p2); l && *l > 0) {
    lambda = std::min(size, *l);
  }
  if (lambda >= size) {
    walkOwnerChanges(prev, next, processors, size, words, pairs);
  } else {
    walkOwnerChanges(prev, next, processors, lambda, words, pairs);
    const std::int64_t cycles = size / lambda;
    const std::int64_t rem = size % lambda;
    words = checkedMul(words, cycles);
    std::int64_t remWords = 0;
    walkOwnerChanges(prev, next, processors, rem, remWords, pairs);
    words = checkedAdd(words, remWords);
  }
  messages = static_cast<std::int64_t>(pairs.size());
}

}  // namespace

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

double SymbolicCounts::localFraction() const {
  std::int64_t local = 0;
  std::int64_t remote = 0;
  for (const auto& p : observed.phases) {
    local += p.local();
    remote += p.remote();
  }
  const auto total = local + remote;
  return total == 0 ? 1.0 : static_cast<double>(local) / static_cast<double>(total);
}

std::string SymbolicCounts::str() const {
  std::ostringstream os;
  os << "symval: H=" << processors << " accesses=" << totalAccesses
     << " local_fraction=" << localFraction() << " regions(closed-form=" << closedFormRegions
     << ", enumerated=" << enumeratedRegions << ")\n";
  for (const auto& p : observed.phases) {
    os << "  " << p.phase << ":";
    for (const auto& [array, c] : p.arrays) {
      os << " " << array << "(local=" << c.local << ",remote=" << c.remote << ")";
    }
    os << "\n";
  }
  for (const auto& r : observed.redistributions) {
    os << "  " << (r.frontier ? "frontier " : "redistribute ") << r.array << " before phase "
       << r.beforePhase + 1 << ": words=" << r.wordsMoved << " msgs=" << r.messages << "\n";
  }
  return os.str();
}

SymbolicCounts symbolicTrace(const ir::Program& program, const ir::Bindings& params,
                             const dsm::ExecutionPlan& plan, const SymvalOptions& opts) {
  obs::Span span("symval.trace", "symval");
  AD_REQUIRE(plan.iteration.size() == program.phases().size(), "plan must cover every phase");
  AD_REQUIRE(opts.processors >= 1, "need at least one processor");
  const std::int64_t H = opts.processors;
  const std::size_t numPhases = program.phases().size();
  const auto start = std::chrono::steady_clock::now();

  SymbolicCounts result;
  result.processors = H;
  SetCache sets;

  // Global redistribution jobs, appended after all frontier events (the
  // simulator pushes frontiers during preparation and globals after the
  // replay, so they group that way in its output).
  struct GlobalJob {
    std::string array;
    std::size_t beforePhase;
    std::int64_t size;
    const dsm::DataDistribution* prev;
    const dsm::DataDistribution* next;
  };
  std::vector<GlobalJob> jobs;

  for (std::size_t k = 0; k < numPhases; ++k) {
    const ir::Phase& phase = program.phase(k);
    obs::Span phaseSpan("symval.phase:" + phase.name(), "symval");
    const dsm::IterationDistribution& sched = plan.iteration[k];

    // Slot assignment and per-reference recipes, mirroring the simulator.
    std::vector<std::string> slotArrays;
    std::map<std::string, std::size_t> slotOf;
    std::vector<RefInfo> refInfos;
    for (const auto& r : phase.refs()) {
      RefInfo info;
      const auto it = slotOf.find(r.array);
      if (it != slotOf.end()) {
        info.slot = it->second;
      } else {
        info.slot = slotArrays.size();
        slotOf.emplace(r.array, info.slot);
        slotArrays.push_back(r.array);
      }
      info.privatized = phase.isPrivatized(r.array);
      if (!info.privatized) {
        const auto dit = plan.data.find(r.array);
        AD_REQUIRE(dit != plan.data.end(), "plan missing array " + r.array);
        info.dist = &dit->second[k];
        if (r.kind == ir::AccessKind::kRead) {
          if (auto hit = plan.halo.find(r.array); hit != plan.halo.end()) {
            info.halo = hit->second[k];
          }
        }
      }
      refInfos.push_back(info);
    }

    if (k > 0) {
      for (const auto& arr : program.arrays()) {
        const auto it = plan.data.find(arr.name);
        if (it == plan.data.end()) continue;
        const dsm::DataDistribution& prev = it->second[k - 1];
        const dsm::DataDistribution& next = it->second[k];
        if (prev == next) continue;
        if (!prev.hasOwner() || !next.hasOwner()) continue;
        if (!dsm::redistributionMovesData(program, arr.name, k)) continue;
        const std::int64_t size = evalInt(arr.size, params, "array size");
        jobs.push_back(GlobalJob{arr.name, k, size, &prev, &next});
      }
    }

    // Frontier refreshes: the same closed form the simulator records.
    for (const auto& arr : program.arrays()) {
      const auto hit = plan.halo.find(arr.name);
      if (hit == plan.halo.end() || hit->second[k] <= 0) continue;
      if (!phase.reads(arr.name) || phase.isPrivatized(arr.name)) continue;
      bool writtenElsewhere = false;
      for (const auto& other : program.phases()) {
        writtenElsewhere = writtenElsewhere || (&other != &phase && other.writes(arr.name) &&
                                               !other.isPrivatized(arr.name));
      }
      if (!writtenElsewhere) continue;
      const auto& dist = plan.data.at(arr.name)[k];
      if (!dist.hasOwner()) continue;
      const std::int64_t size = evalInt(arr.size, params, "array size");
      const std::int64_t boundaries = std::max<std::int64_t>(0, ceilDiv(size, dist.block) - 1);
      dsm::RedistributionStats rs;
      rs.array = arr.name;
      rs.beforePhase = k;
      rs.frontier = true;
      rs.wordsMoved = 2 * hit->second[k] * boundaries;
      rs.messages = 2 * boundaries;
      if (rs.wordsMoved > 0) result.observed.redistributions.push_back(std::move(rs));
    }

    // Closed-form access counting, with per-(phase, array) degradation to the
    // enumerating oracle on Unknown regions.
    std::vector<dsm::ArrayCounts> slots(slotArrays.size());
    std::map<std::size_t, std::string> degraded;  // slot -> cause
    for (std::size_t i = 0; i < phase.refs().size(); ++i) {
      const RefInfo& info = refInfos[i];
      if (degraded.count(info.slot) != 0) continue;
      if (AD_FAULT_POINT("symval.region")) {
        degraded.emplace(info.slot, "fault");
        continue;
      }
      bool ok = false;
      try {
        ok = phase.hasParallelLoop()
                 ? countParallelRegion(phase, phase.refs()[i], info, params, sched, H, sets,
                                       slots[info.slot], opts.wordBytes)
                 : countSerialRegion(phase, phase.refs()[i], info, params, H, sets,
                                     slots[info.slot], opts.wordBytes);
      } catch (const AnalysisError&) {
        ok = false;  // overflow or non-integer form: the oracle settles it
      }
      if (ok) {
        ++result.closedFormRegions;
      } else {
        degraded.emplace(info.slot, support::budgetCompromised()
                                        ? support::currentDegradationCause()
                                        : "unknown-region");
      }
    }

    if (!degraded.empty()) {
      for (const auto& [slot, cause] : degraded) {
        slots[slot] = dsm::ArrayCounts{};
        for (std::size_t i = 0; i < refInfos.size(); ++i) {
          if (refInfos[i].slot == slot) ++result.enumeratedRegions;
        }
        support::recordDegradation("symval.region",
                                   "phase=" + phase.name() + " array=" + slotArrays[slot],
                                   "enumerated trace oracle", cause);
      }
      ir::forEachAccess(program, phase, params,
                        [&](const ir::ConcreteAccess& acc, const ir::Bindings&) {
                          const std::size_t refIdx =
                              static_cast<std::size_t>(acc.ref - phase.refs().data());
                          const RefInfo& info = refInfos[refIdx];
                          if (degraded.count(info.slot) == 0) return;
                          const std::int64_t pe =
                              phase.hasParallelLoop() ? sched.executor(acc.parallelIter, H) : 0;
                          dsm::ArrayCounts& c = slots[info.slot];
                          if (info.alwaysLocal() ||
                              info.dist->isLocal(acc.address, pe, H, info.halo)) {
                            ++c.local;
                          } else {
                            ++c.remote;
                            c.remoteBytes += opts.wordBytes;
                          }
                        });
    }

    dsm::PhaseCounts pc;
    pc.phase = phase.name();
    for (std::size_t slot = 0; slot < slotArrays.size(); ++slot) {
      pc.arrays.emplace(slotArrays[slot], slots[slot]);
      result.totalAccesses += slots[slot].local + slots[slot].remote;
    }
    result.observed.phases.push_back(std::move(pc));
  }

  for (const auto& job : jobs) {
    dsm::RedistributionStats rs;
    rs.array = job.array;
    rs.beforePhase = job.beforePhase;
    countRedistribution(*job.prev, *job.next, job.size, H, rs.wordsMoved, rs.messages);
    if (rs.wordsMoved > 0) result.observed.redistributions.push_back(std::move(rs));
  }

  result.wallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  obs::MetricsRegistry& reg = obs::metrics();
  std::int64_t localTotal = 0;
  std::int64_t remoteTotal = 0;
  std::int64_t remoteBytes = 0;
  for (const auto& p : result.observed.phases) {
    for (const auto& [array, c] : p.arrays) {
      localTotal += c.local;
      remoteTotal += c.remote;
      remoteBytes += c.remoteBytes;
    }
  }
  reg.counter("ad.symval.local_accesses").add(localTotal);
  reg.counter("ad.symval.remote_accesses").add(remoteTotal);
  reg.counter("ad.symval.remote_bytes").add(remoteBytes);
  reg.counter("ad.symval.regions_closed_form").add(result.closedFormRegions);
  reg.counter("ad.symval.regions_enumerated").add(result.enumeratedRegions);
  std::int64_t redistWords = 0;
  std::int64_t frontierWords = 0;
  for (const auto& r : result.observed.redistributions) {
    (r.frontier ? frontierWords : redistWords) += r.wordsMoved;
  }
  reg.counter("ad.symval.redistributed_words").add(redistWords);
  reg.counter("ad.symval.frontier_words").add(frontierWords);
  return result;
}

std::optional<std::string> describeTraceDifference(const dsm::ObservedTrace& symbolic,
                                                   const dsm::ObservedTrace& trace) {
  std::ostringstream os;
  if (symbolic.phases.size() != trace.phases.size()) {
    os << "phase count " << symbolic.phases.size() << " != " << trace.phases.size();
    return os.str();
  }
  for (std::size_t k = 0; k < trace.phases.size(); ++k) {
    const auto& sp = symbolic.phases[k];
    const auto& tp = trace.phases[k];
    if (sp.phase != tp.phase) {
      os << "phase " << k << " name '" << sp.phase << "' != '" << tp.phase << "'";
      return os.str();
    }
    if (sp.arrays.size() != tp.arrays.size()) {
      os << "phase " << sp.phase << ": array count " << sp.arrays.size()
         << " != " << tp.arrays.size();
      return os.str();
    }
    auto si = sp.arrays.begin();
    auto ti = tp.arrays.begin();
    for (; ti != tp.arrays.end(); ++si, ++ti) {
      if (si->first != ti->first) {
        os << "phase " << sp.phase << ": array '" << si->first << "' != '" << ti->first << "'";
        return os.str();
      }
      if (si->second.local != ti->second.local || si->second.remote != ti->second.remote ||
          si->second.remoteBytes != ti->second.remoteBytes) {
        os << "phase " << sp.phase << " array " << ti->first << ": symbolic local/remote/bytes "
           << si->second.local << "/" << si->second.remote << "/" << si->second.remoteBytes
           << " != traced " << ti->second.local << "/" << ti->second.remote << "/"
           << ti->second.remoteBytes;
        return os.str();
      }
    }
  }
  if (symbolic.redistributions.size() != trace.redistributions.size()) {
    os << "redistribution count " << symbolic.redistributions.size()
       << " != " << trace.redistributions.size();
    return os.str();
  }
  for (std::size_t i = 0; i < trace.redistributions.size(); ++i) {
    const auto& sr = symbolic.redistributions[i];
    const auto& tr = trace.redistributions[i];
    if (sr.array != tr.array || sr.beforePhase != tr.beforePhase ||
        sr.frontier != tr.frontier || sr.wordsMoved != tr.wordsMoved ||
        sr.messages != tr.messages) {
      os << "redistribution " << i << ": symbolic (" << sr.array << ", before " << sr.beforePhase
         << ", frontier=" << sr.frontier << ", words=" << sr.wordsMoved
         << ", msgs=" << sr.messages << ") != traced (" << tr.array << ", before "
         << tr.beforePhase << ", frontier=" << tr.frontier << ", words=" << tr.wordsMoved
         << ", msgs=" << tr.messages << ")";
      return os.str();
    }
  }
  return std::nullopt;
}

}  // namespace ad::loc
