// Closed-form (symbolic) trace validation.
//
// The enumerating simulator (sim/trace_sim) classifies every concrete access
// of every phase against the plan's distributions — exact, but O(accesses),
// which caps it well below the paper's problem scales. This module computes
// the *same* observed trace in closed form: each reference's access region is
// collapsed into arithmetic progressions (loop-nest tails fold by exact
// stride-merge rules), and each progression is intersected with the
// processor-locality interval sets of sym/interval_set — owner blocks,
// Theorem-1c replicated halos, and folded-storage reflections included. The
// per-(phase, processor) local/remote counts and the redistribution
// word/message counts then cost O(descriptor regions), independent of the
// iteration counts being validated.
//
// The output is an dsm::ObservedTrace that must be *identical* — field for
// field, ordering included — to sim::simulateTrace's on the same inputs;
// `--validate=both` and the differential tests enforce exactly that.
//
// Degradation ladder: a region the algebra cannot collapse (non-affine
// residue after numeric expansion, cap or budget exhaustion, or an injected
// "symval.region" fault) falls back to the enumerating oracle for that
// (phase, array) only — the counts stay exact, the run is marked degraded
// via support::recordDegradation.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dsm/validate.hpp"
#include "ir/walker.hpp"

namespace ad::loc {

struct SymvalOptions {
  std::int64_t processors = 8;
  std::int64_t wordBytes = 8;  ///< bytes charged per remote access
};

/// Result of one closed-form validation run; `observed` has the exact shape
/// sim::TraceResult::observed has.
struct SymbolicCounts {
  dsm::ObservedTrace observed;
  std::int64_t processors = 0;
  std::int64_t totalAccesses = 0;
  double wallSeconds = 0.0;
  std::int64_t closedFormRegions = 0;  ///< (phase, ref) regions counted algebraically
  std::int64_t enumeratedRegions = 0;  ///< regions that fell back to enumeration

  [[nodiscard]] double localFraction() const;
  [[nodiscard]] std::string str() const;
};

/// Computes the plan's observed trace in closed form. Throws
/// AnalysisError/ProgramError on unanalyzable inputs (same contract as
/// sim::simulateTrace).
[[nodiscard]] SymbolicCounts symbolicTrace(const ir::Program& program,
                                           const ir::Bindings& params,
                                           const dsm::ExecutionPlan& plan,
                                           const SymvalOptions& opts = {});

/// Differential comparison: first difference between the symbolic and the
/// enumerated trace (counts, redistribution events, ordering); nullopt when
/// byte-identical.
[[nodiscard]] std::optional<std::string> describeTraceDifference(
    const dsm::ObservedTrace& symbolic, const dsm::ObservedTrace& trace);

}  // namespace ad::loc
