#include "comm/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "support/diagnostics.hpp"

namespace ad::comm {

std::int64_t Message::words() const {
  std::int64_t n = 0;
  for (const auto& r : ranges) n += r.words();
  return n;
}

std::int64_t CommSchedule::totalWords() const {
  std::int64_t n = 0;
  for (const auto& m : messages_) n += m.words();
  return n;
}

double CommSchedule::time(const dsm::MachineParams& machine) const {
  // Each source processor issues its puts back-to-back; sources proceed in
  // parallel, so the schedule takes as long as the busiest source.
  std::map<std::int64_t, double> perSource;
  for (const auto& m : messages_) {
    perSource[m.src] +=
        machine.putLatency + static_cast<double>(m.words()) * machine.perWord;
  }
  double worst = 0.0;
  for (const auto& [src, t] : perSource) worst = std::max(worst, t);
  return worst;
}

std::string CommSchedule::str() const {
  std::ostringstream os;
  os << (pattern_ == Pattern::kGlobal ? "global" : "frontier") << " communication for "
     << array_ << " (" << messages_.size() << " messages, " << totalWords() << " words)\n";
  for (const auto& m : messages_) {
    os << "  PE " << m.src << " -> PE " << m.dst << " (" << m.words() << " words):";
    const std::size_t shown = std::min<std::size_t>(4, m.ranges.size());
    for (std::size_t i = 0; i < shown; ++i) {
      os << " put " << array_ << "[" << m.ranges[i].begin << ".." << m.ranges[i].end << ")";
    }
    if (m.ranges.size() > shown) os << " ... (" << m.ranges.size() - shown << " more ranges)";
    os << "\n";
  }
  return os.str();
}

namespace {

/// Groups (src, dst, addr) triples into aggregated messages with coalesced
/// contiguous ranges. `moves` must be sorted by (src, dst, addr).
std::vector<Message> aggregate(
    std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> moves) {
  std::sort(moves.begin(), moves.end());
  std::vector<Message> out;
  for (const auto& [src, dst, addr] : moves) {
    if (out.empty() || out.back().src != src || out.back().dst != dst) {
      out.push_back(Message{src, dst, {}});
    }
    auto& ranges = out.back().ranges;
    if (!ranges.empty() && ranges.back().end == addr) {
      ++ranges.back().end;  // extend the current run
    } else {
      ranges.push_back(Range{addr, addr + 1});
    }
  }
  return out;
}

}  // namespace

CommSchedule generateGlobal(const std::string& array, std::int64_t size,
                            const dsm::DataDistribution& from, const dsm::DataDistribution& to,
                            std::int64_t processors) {
  AD_REQUIRE(from.hasOwner() && to.hasOwner(),
             "global redistribution requires owner-bearing endpoints");
  std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> moves;
  for (std::int64_t a = 0; a < size; ++a) {
    const std::int64_t src = from.owner(a, processors);
    const std::int64_t dst = to.owner(a, processors);
    if (src != dst) moves.emplace_back(src, dst, a);
  }
  return CommSchedule(array, Pattern::kGlobal, aggregate(std::move(moves)));
}

CommSchedule generateFrontier(const std::string& array, std::int64_t size,
                              const dsm::DataDistribution& dist, std::int64_t overlap,
                              std::int64_t processors) {
  AD_REQUIRE(dist.kind == dsm::DataDistribution::Kind::kBlockCyclic,
             "frontier update requires a BLOCK-CYCLIC distribution");
  AD_REQUIRE(overlap >= 1, "overlap width must be positive");
  std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> moves;
  // The owner of each block refreshes its replicated copy of the first
  // `overlap` elements of the following block, which the next owner holds.
  for (std::int64_t blockStart = 0; blockStart < size; blockStart += dist.block) {
    const std::int64_t nextStart = blockStart + dist.block;
    if (nextStart >= size) break;
    const std::int64_t dst = dist.owner(blockStart, processors);
    const std::int64_t src = dist.owner(nextStart, processors);
    if (src == dst) continue;
    const std::int64_t end = std::min(size, nextStart + overlap);
    for (std::int64_t a = nextStart; a < end; ++a) moves.emplace_back(src, dst, a);
  }
  return CommSchedule(array, Pattern::kFrontier, aggregate(std::move(moves)));
}

bool verifiesRedistribution(const CommSchedule& schedule, std::int64_t size,
                            const dsm::DataDistribution& from, const dsm::DataDistribution& to,
                            std::int64_t processors) {
  std::vector<int> covered(static_cast<std::size_t>(size), 0);
  for (const auto& m : schedule.messages()) {
    for (const auto& r : m.ranges) {
      for (std::int64_t a = r.begin; a < r.end; ++a) {
        if (a < 0 || a >= size) return false;
        if (from.owner(a, processors) != m.src) return false;
        if (to.owner(a, processors) != m.dst) return false;
        if (m.src == m.dst) return false;
        ++covered[static_cast<std::size_t>(a)];
      }
    }
  }
  for (std::int64_t a = 0; a < size; ++a) {
    const bool moves = from.owner(a, processors) != to.owner(a, processors);
    if (covered[static_cast<std::size_t>(a)] != (moves ? 1 : 0)) return false;
  }
  return true;
}

}  // namespace ad::comm
