// Communication generation (Section 4.3b).
//
// For every C edge of the LCG the compiler must emit communication before
// the drain phase. Two patterns (the paper's terminology):
//   - Global communications: a redistribution — every element whose owner
//     changes between the source and drain distributions moves with a
//     single-sided put;
//   - Frontier communications: an update of the replicated overlap
//     sub-regions (width Delta_s) at the boundaries between neighbouring
//     processors' chunks.
// Message aggregation packs all element ranges with the same (source,
// destination) pair into one message.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/machine.hpp"

namespace ad::comm {

/// A contiguous run of array elements travelling between two processors.
struct Range {
  std::int64_t begin = 0;  ///< first element
  std::int64_t end = 0;    ///< one past last

  [[nodiscard]] std::int64_t words() const noexcept { return end - begin; }
};

/// One aggregated put: everything processor `src` sends to `dst`.
struct Message {
  std::int64_t src = 0;
  std::int64_t dst = 0;
  std::vector<Range> ranges;

  [[nodiscard]] std::int64_t words() const;
};

enum class Pattern { kGlobal, kFrontier };

class CommSchedule {
 public:
  CommSchedule(std::string array, Pattern pattern, std::vector<Message> messages)
      : array_(std::move(array)), pattern_(pattern), messages_(std::move(messages)) {}

  [[nodiscard]] const std::string& array() const noexcept { return array_; }
  [[nodiscard]] Pattern pattern() const noexcept { return pattern_; }
  [[nodiscard]] const std::vector<Message>& messages() const noexcept { return messages_; }
  [[nodiscard]] std::size_t messageCount() const noexcept { return messages_.size(); }
  [[nodiscard]] std::int64_t totalWords() const;

  /// Estimated execution time (aggregated puts in parallel across sources).
  [[nodiscard]] double time(const dsm::MachineParams& machine) const;

  /// SHMEM-style pseudo-code of the schedule ("PE s: put(X[b..e) -> PE d)").
  [[nodiscard]] std::string str() const;

 private:
  std::string array_;
  Pattern pattern_;
  std::vector<Message> messages_;
};

/// Global redistribution of `size` elements from distribution `from` to `to`.
/// Both must be BLOCK-CYCLIC.
[[nodiscard]] CommSchedule generateGlobal(const std::string& array, std::int64_t size,
                                          const dsm::DataDistribution& from,
                                          const dsm::DataDistribution& to,
                                          std::int64_t processors);

/// Frontier update: each block's owner sends the `overlap`-wide region at the
/// start of the *next* block to that block's owner (the replicated overlap
/// sub-region of Theorem 1c after a write).
[[nodiscard]] CommSchedule generateFrontier(const std::string& array, std::int64_t size,
                                            const dsm::DataDistribution& dist,
                                            std::int64_t overlap, std::int64_t processors);

/// Verifies that `schedule` moves exactly the elements whose owner changes
/// between `from` and `to`, each exactly once, with correct endpoints.
[[nodiscard]] bool verifiesRedistribution(const CommSchedule& schedule, std::int64_t size,
                                          const dsm::DataDistribution& from,
                                          const dsm::DataDistribution& to,
                                          std::int64_t processors);

}  // namespace ad::comm
