// Front end for the mini-Fortran phase language.
//
// Stands in for the Fortran77 + Polaris pipeline the paper used: programs
// arrive already split into phases with DOALL-marked parallel loops,
// normalized bounds, and linearized subscripts. Grammar (line comments with
// '#'):
//
//   program    := decl* phase+
//   decl       := "param" IDENT
//               | "pow2param" IDENT "=" "2" "^" IDENT
//               | "array" IDENT "(" expr ")"
//               | "cyclic"
//   phase      := "phase" IDENT "{" loop "}" phaseattr*  -- attrs inside {}
//   loop       := ("do" | "doall") IDENT "=" expr "," expr "{" body "}"
//   body       := (loop | stmt)*
//   stmt       := ("read" | "write" | "update") IDENT "(" expr ")"
//               | "private" IDENT
//               | "work" NUMBER
//   expr       := term (("+" | "-") term)*
//   term       := factor (("*" | "/") factor)*      -- "/" must divide exactly
//   factor     := ("-")? primary ("^" primary)?     -- 2^e is a pow2 factor
//   primary    := NUMBER | IDENT | "(" expr ")"
//
// References may appear at any loop depth; as in the paper's model they are
// characterized by the whole nest. Loop indices scope to their loop;
// any other identifier must be a declared parameter.
#pragma once

#include <string>
#include <string_view>

#include "ir/ir.hpp"

namespace ad::frontend {

/// Thrown on syntax or semantic errors, with line/column in the message.
class ParseError : public ProgramError {
 public:
  ParseError(const std::string& message, int line, int column);

  [[nodiscard]] int line() const noexcept { return line_; }
  [[nodiscard]] int column() const noexcept { return column_; }

 private:
  int line_;
  int column_;
};

/// Parses a full mini-Fortran program. The returned Program is validated.
[[nodiscard]] ir::Program parseProgram(std::string_view source);

/// Parses one expression against an existing symbol table (handy in tests
/// and in the quickstart example). Unknown identifiers become parameters
/// when `internParams` is set, otherwise raise ParseError.
[[nodiscard]] sym::Expr parseExpr(std::string_view source, sym::SymbolTable& symbols,
                                  bool internParams = false);

}  // namespace ad::frontend
