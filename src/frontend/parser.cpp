#include "frontend/parser.hpp"

#include "obs/obs.hpp"
#include "support/fault.hpp"
#include "symbolic/ranges.hpp"

#include <cctype>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <vector>

namespace ad::frontend {

using sym::Expr;

ParseError::ParseError(const std::string& message, int line, int column)
    : ProgramError("parse error at " + std::to_string(line) + ":" + std::to_string(column) +
                   ": " + message),
      line_(line),
      column_(column) {}

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class Tok {
  kIdent,
  kNumber,
  kFloat,
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kComma,
  kEquals,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kCaret,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t number = 0;
  double real = 0.0;
  int line = 1;
  int column = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  [[nodiscard]] const Token& peek() const noexcept { return current_; }

  Token next() {
    Token t = current_;
    advance();
    return t;
  }

 private:
  void advance() {
    skipSpace();
    current_ = Token{};
    current_.line = line_;
    current_.column = column_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string ident;
      while (pos_ < src_.size() && (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
                                    src_[pos_] == '_')) {
        ident.push_back(src_[pos_]);
        bump();
      }
      current_.kind = Tok::kIdent;
      current_.text = std::move(ident);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string num;
      bool isFloat = false;
      while (pos_ < src_.size() && (std::isdigit(static_cast<unsigned char>(src_[pos_])) ||
                                    src_[pos_] == '.')) {
        isFloat = isFloat || src_[pos_] == '.';
        num.push_back(src_[pos_]);
        bump();
      }
      try {
        if (isFloat) {
          current_.kind = Tok::kFloat;
          current_.real = std::stod(num);
        } else {
          current_.kind = Tok::kNumber;
          current_.number = std::stoll(num);
        }
      } catch (const std::exception&) {  // std::out_of_range / invalid "1.2.3"
        throw ParseError("numeric literal '" + num + "' is out of range", current_.line,
                         current_.column);
      }
      current_.text = std::move(num);
      return;
    }
    bump();
    switch (c) {
      case '(': current_.kind = Tok::kLParen; return;
      case ')': current_.kind = Tok::kRParen; return;
      case '{': current_.kind = Tok::kLBrace; return;
      case '}': current_.kind = Tok::kRBrace; return;
      case ',': current_.kind = Tok::kComma; return;
      case '=': current_.kind = Tok::kEquals; return;
      case '+': current_.kind = Tok::kPlus; return;
      case '-': current_.kind = Tok::kMinus; return;
      case '*': current_.kind = Tok::kStar; return;
      case '/': current_.kind = Tok::kSlash; return;
      case '^': current_.kind = Tok::kCaret; return;
      default:
        throw ParseError(std::string("unexpected character '") + c + "'", current_.line,
                         current_.column);
    }
  }

  void skipSpace() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        bump();
      } else {
        break;
      }
    }
  }

  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  Token current_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  /// Structural limits: generous for real codes, small enough that
  /// adversarial nesting is rejected long before the stack is at risk.
  static constexpr int kMaxLoopNest = 64;
  static constexpr int kMaxExprDepth = 200;

  ir::Program parseProgram() {
    ir::Program prog;
    // Declarations.
    while (lex_.peek().kind == Tok::kIdent) {
      const std::string& kw = lex_.peek().text;
      if (kw == "param") {
        lex_.next();
        prog.symbols().parameter(expectIdent("parameter name"));
      } else if (kw == "pow2param") {
        lex_.next();
        const std::string name = expectIdent("parameter name");
        expect(Tok::kEquals, "'='");
        const Token base = lex_.next();
        if (base.kind != Tok::kNumber || base.number != 2) {
          throw ParseError("pow2param must be of the form NAME = 2^log", base.line, base.column);
        }
        expect(Tok::kCaret, "'^'");
        prog.symbols().pow2Parameter(name, expectIdent("log symbol"));
      } else if (kw == "array") {
        lex_.next();
        const std::string name = expectIdent("array name");
        expect(Tok::kLParen, "'('");
        std::vector<Expr> dims;
        dims.push_back(parseExpr(prog.symbols(), {}));
        while (lex_.peek().kind == Tok::kComma) {
          lex_.next();
          dims.push_back(parseExpr(prog.symbols(), {}));
        }
        expect(Tok::kRParen, "')'");
        if (dims.size() == 1) {
          prog.declareArray(name, std::move(dims[0]));
        } else {
          prog.declareArray(name, std::move(dims));
        }
      } else if (kw == "cyclic") {
        lex_.next();
        prog.setCyclic(true);
      } else if (kw == "phase") {
        break;
      } else {
        const Token t = lex_.peek();
        throw ParseError("expected a declaration or 'phase', got '" + kw + "'", t.line,
                         t.column);
      }
    }
    // Phases.
    while (lex_.peek().kind == Tok::kIdent && lex_.peek().text == "phase") {
      parsePhase(prog);
    }
    const Token t = lex_.peek();
    if (t.kind != Tok::kEnd) throw ParseError("trailing input after last phase", t.line, t.column);
    prog.validate();
    return prog;
  }

  Expr parseExprPublic(sym::SymbolTable& symbols, bool internParams) {
    internParams_ = internParams;
    Expr e = parseExpr(symbols, {});
    const Token t = lex_.peek();
    if (t.kind != Tok::kEnd) throw ParseError("trailing input after expression", t.line, t.column);
    return e;
  }

 private:
  void parsePhase(ir::Program& prog) {
    lex_.next();  // 'phase'
    const std::string name = expectIdent("phase name");
    expect(Tok::kLBrace, "'{'");
    ir::PhaseBuilder builder(prog, name);
    std::map<std::string, sym::SymbolId> indexScope;
    parseBody(prog, builder, indexScope, /*depth=*/0);
    expect(Tok::kRBrace, "'}'");
    builder.commit();
  }

  void parseBody(ir::Program& prog, ir::PhaseBuilder& builder,
                 std::map<std::string, sym::SymbolId>& scope, int depth) {
    // Recursion is bounded so adversarial input exhausts the grammar, not the
    // stack: anything deeper than real codes use is a structured rejection.
    if (depth > kMaxLoopNest) {
      const Token t = lex_.peek();
      throw ParseError("loop nest deeper than " + std::to_string(kMaxLoopNest) + " levels",
                       t.line, t.column);
    }
    while (lex_.peek().kind == Tok::kIdent) {
      const std::string kw = lex_.peek().text;
      if (kw == "do" || kw == "doall") {
        lex_.next();
        const Token nameTok = lex_.peek();
        const std::string index = expectIdent("loop index");
        if (scope.count(index)) {
          throw ParseError("loop index '" + index + "' shadows an enclosing index",
                           nameTok.line, nameTok.column);
        }
        expect(Tok::kEquals, "'='");
        Expr lo = parseExpr(prog.symbols(), scope);
        expect(Tok::kComma, "','");
        Expr hi = parseExpr(prog.symbols(), scope);
        if (kw == "doall") {
          builder.doall(index, std::move(lo), std::move(hi));
        } else {
          builder.loop(index, std::move(lo), std::move(hi));
        }
        scope[index] = *prog.symbols().lookup(index);
        expect(Tok::kLBrace, "'{'");
        parseBody(prog, builder, scope, depth + 1);
        expect(Tok::kRBrace, "'}'");
        scope.erase(index);
      } else if (kw == "read" || kw == "write" || kw == "update") {
        lex_.next();
        const Token arrTok = lex_.peek();
        const std::string array = expectIdent("array name");
        expect(Tok::kLParen, "'('");
        std::vector<Expr> subscripts;
        subscripts.push_back(parseExpr(prog.symbols(), scope));
        while (lex_.peek().kind == Tok::kComma) {
          lex_.next();
          subscripts.push_back(parseExpr(prog.symbols(), scope));
        }
        expect(Tok::kRParen, "')'");
        Expr subscript;
        if (subscripts.size() == 1) {
          subscript = std::move(subscripts[0]);  // raw linear offset (1-D view)
        } else {
          if (!prog.hasArray(array)) {
            throw ParseError("multi-dimensional reference to undeclared array '" + array + "'",
                             arrTok.line, arrTok.column);
          }
          try {
            subscript = prog.array(array).linearize(subscripts);
          } catch (const ProgramError& e) {
            throw ParseError(e.what(), arrTok.line, arrTok.column);
          }
        }
        if (kw == "read") {
          builder.read(array, std::move(subscript));
        } else if (kw == "write") {
          builder.write(array, std::move(subscript));
        } else {
          builder.update(array, std::move(subscript));
        }
      } else if (kw == "private") {
        lex_.next();
        builder.privatize(expectIdent("array name"));
      } else if (kw == "work") {
        lex_.next();
        const Token t = lex_.next();
        if (t.kind == Tok::kFloat) {
          builder.workPerAccess(t.real);
        } else if (t.kind == Tok::kNumber) {
          builder.workPerAccess(static_cast<double>(t.number));
        } else {
          throw ParseError("expected a number after 'work'", t.line, t.column);
        }
      } else {
        return;  // end of this body ('}' or next phase keyword handled above)
      }
    }
  }

  // -- expressions ----------------------------------------------------------

  Expr parseExpr(sym::SymbolTable& symbols, const std::map<std::string, sym::SymbolId>& scope) {
    Expr e = parseTerm(symbols, scope);
    while (lex_.peek().kind == Tok::kPlus || lex_.peek().kind == Tok::kMinus) {
      const Tok op = lex_.next().kind;
      Expr rhs = parseTerm(symbols, scope);
      e = op == Tok::kPlus ? e + rhs : e - rhs;
    }
    return e;
  }

  Expr parseTerm(sym::SymbolTable& symbols, const std::map<std::string, sym::SymbolId>& scope) {
    Expr e = parseFactor(symbols, scope);
    while (lex_.peek().kind == Tok::kStar || lex_.peek().kind == Tok::kSlash) {
      const Token op = lex_.next();
      Expr rhs = parseFactor(symbols, scope);
      if (op.kind == Tok::kStar) {
        e = e * rhs;
      } else {
        auto q = Expr::divideExact(e, rhs);
        // The quotient must be provably integer-valued (P/2 is fine for a
        // pow2 parameter P; N/2 for a plain parameter N is not).
        const sym::Assumptions defaults(symbols);
        if (!q || !sym::RangeAnalyzer(defaults).proveIntegerValued(*q)) {
          throw ParseError("'/' requires an exact integer division", op.line, op.column);
        }
        e = std::move(*q);
      }
    }
    return e;
  }

  Expr parseFactor(sym::SymbolTable& symbols, const std::map<std::string, sym::SymbolId>& scope) {
    bool negate = false;
    while (lex_.peek().kind == Tok::kMinus) {
      lex_.next();
      negate = !negate;
    }
    Expr base = parsePrimary(symbols, scope);
    if (lex_.peek().kind == Tok::kCaret) {
      const Token caret = lex_.next();
      // 2^e becomes a pow2 factor; ident^k an integer power.
      if (auto b = base.asInteger(); b && *b == 2) {
        Expr exponent = parsePrimary(symbols, scope);
        base = Expr::pow2(exponent);
      } else {
        const Token t = lex_.peek();
        Expr exponent = parsePrimary(symbols, scope);
        const auto k = exponent.asInteger();
        if (!k || *k < 0) {
          throw ParseError("'^' needs base 2 or a constant nonnegative exponent", t.line,
                           t.column);
        }
        Expr r = Expr::constant(1);
        for (std::int64_t i = 0; i < *k; ++i) r = r * base;
        base = std::move(r);
        static_cast<void>(caret);
      }
    }
    return negate ? -base : base;
  }

  Expr parsePrimary(sym::SymbolTable& symbols, const std::map<std::string, sym::SymbolId>& scope) {
    // Every expression-recursion cycle (parenthesis nesting, unary minus in
    // primary position) passes through here; cap it like the loop nest.
    if (exprDepth_ >= kMaxExprDepth) {
      const Token deep = lex_.peek();
      throw ParseError("expression nested deeper than " + std::to_string(kMaxExprDepth) +
                           " levels",
                       deep.line, deep.column);
    }
    ++exprDepth_;
    struct DepthGuard {
      int& depth;
      ~DepthGuard() { --depth; }
    } guard{exprDepth_};
    const Token t = lex_.next();
    switch (t.kind) {
      case Tok::kNumber:
        return Expr::constant(t.number);
      case Tok::kLParen: {
        Expr e = parseExpr(symbols, scope);
        expect(Tok::kRParen, "')'");
        return e;
      }
      case Tok::kIdent: {
        if (auto it = scope.find(t.text); it != scope.end()) return Expr::symbol(it->second);
        if (symbols.lookup(t.text)) return sym::makeSymbolExpr(symbols, t.text);
        if (internParams_) return sym::makeSymbolExpr(symbols, t.text, /*internIfMissing=*/true);
        throw ParseError("unknown identifier '" + t.text + "'", t.line, t.column);
      }
      case Tok::kMinus: {
        // Unary minus inside a primary position (e.g. 2^(-L)).
        Expr e = parsePrimary(symbols, scope);
        return -e;
      }
      default:
        throw ParseError("expected a number, identifier or '('", t.line, t.column);
    }
  }

  // -- helpers ---------------------------------------------------------------

  std::string expectIdent(const char* what) {
    const Token t = lex_.next();
    if (t.kind != Tok::kIdent) {
      throw ParseError(std::string("expected ") + what, t.line, t.column);
    }
    return t.text;
  }

  void expect(Tok kind, const char* what) {
    const Token t = lex_.next();
    if (t.kind != kind) {
      throw ParseError(std::string("expected ") + what + ", got '" + t.text + "'", t.line,
                       t.column);
    }
  }

  Lexer lex_;
  bool internParams_ = false;
  int exprDepth_ = 0;
};

}  // namespace

ir::Program parseProgram(std::string_view source) {
  obs::Span span("frontend.parse");
  obs::metrics().counter("ad.frontend.programs_parsed").add(1);
  if (AD_FAULT_POINT("frontend.parse")) {
    throw ParseError("injected fault (frontend.parse)", 0, 0);
  }
  return Parser(source).parseProgram();
}

Expr parseExpr(std::string_view source, sym::SymbolTable& symbols, bool internParams) {
  return Parser(source).parseExprPublic(symbols, internParams);
}

}  // namespace ad::frontend
