// Pipeline-wide observability: tracing spans and a metrics registry.
//
// Two process-wide singletons, both thread-safe:
//
//  - obs::tracer() collects timed span events. obs::Span is an RAII scope
//    that records one Chrome/Perfetto "complete" event (ph:"X") when the
//    tracer is enabled; when disabled (the default) the constructor is a
//    single relaxed atomic load and nothing else — instrumentation stays in
//    release builds at near-zero cost. Tracer::toJson() renders the Chrome
//    trace-event format that chrome://tracing and ui.perfetto.dev load
//    directly.
//
//  - obs::metrics() is a registry of named counters, gauges, and histograms.
//    Counters shard their cell across cache lines (the same idiom as the
//    trace simulator's per-thread tallies) so concurrent increments do not
//    contend; MetricsRegistry::toJson() renders a stable-schema document
//    ("ad.metrics.v1", keys sorted).
//
// Naming convention for both spans and metrics: `ad.<subsystem>.<name>` for
// metrics (ad.desc.stride_coalescings, ad.sim.remote_accesses) and
// `<subsystem>.<stage>` for span names (pipeline.ilp_solve, sim.barrier_wait).
// Instruments must register their metric names unconditionally (fetch the
// counter even when adding zero) so the exported schema is stable across
// inputs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ad::obs {

inline constexpr std::string_view kMetricsSchema = "ad.metrics.v1";

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Monotonic counter, sharded across cache lines: each thread lands on a
/// fixed shard, so concurrent add() calls from the simulator's worker
/// threads never bounce one cache line around.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::int64_t n = 1) noexcept;
  [[nodiscard]] std::int64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::int64_t> v{0};
  };
  Cell cells_[kShards];
};

/// Last-write-wins instantaneous value (model sizes, configuration).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Exponential-bucket histogram of non-negative values (base-2 bounds
/// 1, 2, 4, ... plus an overflow bucket). Thread-safe relaxed atomics
/// throughout; count/sum are exact, min/max maintained by CAS.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;  ///< le 2^0 .. 2^30, then +inf

  void observe(std::int64_t v) noexcept;
  [[nodiscard]] std::int64_t count() const noexcept;
  [[nodiscard]] std::int64_t sum() const noexcept;
  [[nodiscard]] std::int64_t minValue() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::int64_t maxValue() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::int64_t bucketCount(std::size_t i) const noexcept;
  /// Inclusive upper bound of bucket i; INT64_MAX for the overflow bucket.
  [[nodiscard]] static std::int64_t bucketBound(std::size_t i) noexcept;
  void reset() noexcept;

 private:
  std::atomic<std::int64_t> buckets_[kBuckets]{};
  Counter count_;
  Counter sum_;
  std::atomic<std::int64_t> min_{std::numeric_limits<std::int64_t>::max()};
  std::atomic<std::int64_t> max_{std::numeric_limits<std::int64_t>::min()};
};

/// Named instrument registry. Lookup takes a mutex (cache the reference on
/// hot paths); the instruments themselves are lock-free. References stay
/// valid for the life of the process — reset() zeroes values, it never
/// removes registrations, so the exported key set only grows.
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Zeroes every instrument (registrations survive).
  void reset();

  /// Stable-schema JSON: {"schema":"ad.metrics.v1","counters":{...},
  /// "gauges":{...},"histograms":{...}} with keys in sorted order.
  [[nodiscard]] std::string toJson() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry.
MetricsRegistry& metrics();

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

/// One Chrome trace-event "complete" event (ph:"X").
struct TraceEvent {
  std::string name;
  std::string cat;
  std::int64_t ts = 0;   ///< microseconds since the tracer epoch
  std::int64_t dur = 0;  ///< microseconds
  std::int64_t tid = 0;
};

struct SpanStats {
  std::int64_t count = 0;
  std::int64_t totalUs = 0;
};

class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Microseconds since the tracer was constructed (works while disabled).
  [[nodiscard]] std::int64_t nowUs() const;

  void record(TraceEvent e);

  /// Associates `tid` with a display name (emitted as thread_name metadata).
  void nameThread(std::int64_t tid, std::string name);

  /// The logical trace tid of the calling thread (0 unless set). The sim's
  /// workers set their simulated-processor number so their spans land on
  /// separate tracks in Perfetto.
  static void setCurrentThreadId(std::int64_t tid) noexcept;
  [[nodiscard]] static std::int64_t currentThreadId() noexcept;

  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  /// Aggregated wall time per span name (for per-stage breakdowns).
  [[nodiscard]] std::map<std::string, SpanStats> statsByName() const;

  /// Drops all recorded events and thread names; keeps the enabled state.
  void clear();

  /// Chrome trace-event JSON document ({"traceEvents":[...]}).
  [[nodiscard]] std::string toJson() const;

 private:
  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::map<std::int64_t, std::string> threadNames_;
};

/// The process-wide tracer.
Tracer& tracer();

/// RAII span: records one complete event on the process tracer covering the
/// scope's lifetime. When the tracer is disabled, construction is one
/// relaxed load and destruction a branch — no clock reads, no allocation.
class Span {
 public:
  explicit Span(std::string_view name, std::string_view cat = "pipeline");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::string cat_;
  std::int64_t startUs_ = 0;
  bool active_ = false;
};

}  // namespace ad::obs
