#include "obs/profiler.hpp"

#include <sstream>

namespace ad::obs {

namespace {

// The calling thread's cached row. One global profiler, so one slot.
thread_local ThreadStats* tlStats = nullptr;

void appendHistogram(std::ostream& os, const Histogram& h) {
  os << "{\"count\": " << h.count() << ", \"sum\": " << h.sum() << ", \"min\": " << h.minValue()
     << ", \"max\": " << h.maxValue() << ", \"buckets\": [";
  std::size_t lastUsed = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    if (h.bucketCount(i) > 0) lastUsed = i;
  }
  for (std::size_t i = 0; i <= lastUsed; ++i) {
    os << (i == 0 ? "" : ", ") << "{\"le\": " << Histogram::bucketBound(i)
       << ", \"count\": " << h.bucketCount(i) << "}";
  }
  os << "]}";
}

}  // namespace

const char* shardFamilyName(ShardFamily f) {
  switch (f) {
    case ShardFamily::kExprIntern: return "intern.expr";
    case ShardFamily::kMemoContext: return "memo.context";
    case ShardFamily::kMemoRegistry: return "memo.registry";
    case ShardFamily::kPhaseInfo: return "loc.phase_array";
  }
  return "unknown";
}

ThreadStats& Profiler::threadStats(std::string_view name) {
  if (tlStats != nullptr) return *tlStats;
  bindCurrentThread(name);
  return *tlStats;
}

void Profiler::bindCurrentThread(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < trackCount_; ++i) {
    if (tracks_[i].name == name) {
      tlStats = &tracks_[i].stats;
      return;
    }
  }
  if (trackCount_ < kMaxThreads) {
    tracks_[trackCount_].name.assign(name);
    tlStats = &tracks_[trackCount_].stats;
    ++trackCount_;
    return;
  }
  // Table full: overflow rows share the last slot rather than dropping data.
  tlStats = &tracks_[kMaxThreads - 1].stats;
}

std::int64_t Profiler::nowUs() { return tracer().nowUs(); }

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < trackCount_; ++i) {
    ThreadStats& t = tracks_[i].stats;
    t.workUs.store(0, std::memory_order_relaxed);
    t.queueWaitUs.store(0, std::memory_order_relaxed);
    t.lockWaitUs.store(0, std::memory_order_relaxed);
    t.idleUs.store(0, std::memory_order_relaxed);
    t.barrierWaitUs.store(0, std::memory_order_relaxed);
    t.tasks.store(0, std::memory_order_relaxed);
    t.steals.store(0, std::memory_order_relaxed);
    t.helped.store(0, std::memory_order_relaxed);
  }
  for (auto& family : shards_) {
    for (auto& s : family) {
      s.acquisitions.store(0, std::memory_order_relaxed);
      s.contended.store(0, std::memory_order_relaxed);
      s.lockWaitUs.store(0, std::memory_order_relaxed);
      s.hits.store(0, std::memory_order_relaxed);
      s.misses.store(0, std::memory_order_relaxed);
      s.probeSteps.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& h : lockWait_) h.reset();
}

std::string Profiler::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kProfileSchema << "\",\n";

  os << "  \"threads\": [";
  bool first = true;
  for (std::size_t i = 0; i < trackCount_; ++i) {
    const ThreadStats& t = tracks_[i].stats;
    os << (first ? "\n" : ",\n") << "    {\"name\": \"" << tracks_[i].name
       << "\", \"tasks\": " << t.tasks.load(std::memory_order_relaxed)
       << ", \"work_us\": " << t.workUs.load(std::memory_order_relaxed)
       << ", \"queue_wait_us\": " << t.queueWaitUs.load(std::memory_order_relaxed)
       << ", \"lock_wait_us\": " << t.lockWaitUs.load(std::memory_order_relaxed)
       << ", \"idle_us\": " << t.idleUs.load(std::memory_order_relaxed)
       << ", \"barrier_wait_us\": " << t.barrierWaitUs.load(std::memory_order_relaxed)
       << ", \"steals\": " << t.steals.load(std::memory_order_relaxed)
       << ", \"helped\": " << t.helped.load(std::memory_order_relaxed) << "}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "],\n";

  os << "  \"shards\": {";
  bool firstFamily = true;
  for (std::size_t f = 0; f < kShardFamilies; ++f) {
    os << (firstFamily ? "\n" : ",\n") << "    \""
       << shardFamilyName(static_cast<ShardFamily>(f)) << "\": [";
    bool firstShard = true;
    for (std::size_t i = 0; i < kMaxShardsPerFamily; ++i) {
      const ShardStats& s = shards_[f][i];
      const std::int64_t acq = s.acquisitions.load(std::memory_order_relaxed);
      const std::int64_t hits = s.hits.load(std::memory_order_relaxed);
      const std::int64_t misses = s.misses.load(std::memory_order_relaxed);
      if (acq == 0 && hits == 0 && misses == 0) continue;  // quiet shard
      os << (firstShard ? "\n" : ",\n") << "      {\"index\": " << i
         << ", \"acquisitions\": " << acq
         << ", \"contended\": " << s.contended.load(std::memory_order_relaxed)
         << ", \"lock_wait_us\": " << s.lockWaitUs.load(std::memory_order_relaxed)
         << ", \"hits\": " << hits << ", \"misses\": " << misses
         << ", \"probe_steps\": " << s.probeSteps.load(std::memory_order_relaxed) << "}";
      firstShard = false;
    }
    os << (firstShard ? "" : "\n    ") << "]";
    firstFamily = false;
  }
  os << (firstFamily ? "" : "\n  ") << "},\n";

  os << "  \"lock_wait_us\": {";
  for (std::size_t f = 0; f < kShardFamilies; ++f) {
    os << (f == 0 ? "\n" : ",\n") << "    \"" << shardFamilyName(static_cast<ShardFamily>(f))
       << "\": ";
    appendHistogram(os, lockWait_[f]);
  }
  os << "\n  }\n}\n";
  return os.str();
}

Profiler& profiler() {
  static Profiler p;
  return p;
}

void ShardLock::lockContended(Profiler& p, ShardFamily family, std::size_t index) {
  ShardStats& s = p.shard(family, index);
  s.acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (mu_.try_lock()) return;
  const std::int64_t t0 = Profiler::nowUs();
  mu_.lock();
  const std::int64_t waited = Profiler::nowUs() - t0;
  s.contended.fetch_add(1, std::memory_order_relaxed);
  s.lockWaitUs.fetch_add(waited, std::memory_order_relaxed);
  p.lockWaitHistogram(family).observe(waited);
  p.threadStats("main").lockWaitUs.fetch_add(waited, std::memory_order_relaxed);
}

}  // namespace ad::obs
