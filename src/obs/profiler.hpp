// Task-level contention profiler: where does the wall-clock of a parallel
// analysis run actually go?
//
// The ad.metrics.v1 counters (pool steals, memo hits, barrier-wait totals)
// are process-wide aggregates — they can say *that* eight threads only buy
// 8% over one, but not *where* the other seven threads wait. This module
// attributes every microsecond of a run to a (thread, cause) pair, the same
// way the paper's descriptors turn opaque traffic into attributable
// per-reference costs:
//
//  - Per-thread tracks (ThreadStats): work vs. queue-wait vs. lock-wait vs.
//    idle vs. barrier-wait time, plus task/steal tallies. Threads register by
//    *name* ("pool.w0", "sim.p3", "main"), so short-lived workers from
//    successive pools and simulator runs accumulate into stable rows instead
//    of leaking one row per std::thread.
//
//  - Per-shard lock accounting (ShardStats): the interned-expression arena
//    and the proof memo time every contended mutex acquisition per shard,
//    and count hits/misses per shard, so "the memo is hot" becomes "shard 5
//    of the memo context table eats 80% of the lock-wait".
//
//  - Export: summary() renders a stable-schema "ad.profile.v1" JSON document
//    (--profile-out); per-thread task activity also lands in the Chrome/
//    Perfetto trace through the existing obs::Tracer (--trace-out), because
//    the pool workers carry named trace tids while the profiler is enabled.
//
// Cost discipline: when disabled (the default) every instrumentation point
// is a single relaxed atomic load — no clock reads, no allocation, no
// locking — mirroring obs::Span. Enabled, the hot additions are two
// steady_clock reads per pool task and one try_lock per profiled mutex;
// bench/contention_profile measures the total below 5% on the six-code
// suite and records it in BENCH_contention.json.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/obs.hpp"

namespace ad::obs {

inline constexpr std::string_view kProfileSchema = "ad.profile.v1";

/// One named per-thread accounting track. All fields are relaxed atomics:
/// the owning thread is the only writer on the hot path, and readers only
/// need eventually-consistent totals for the summary document.
struct alignas(64) ThreadStats {
  std::atomic<std::int64_t> workUs{0};         ///< inside task bodies
  std::atomic<std::int64_t> queueWaitUs{0};    ///< tasks' submit->start latency
  std::atomic<std::int64_t> lockWaitUs{0};     ///< contended profiled mutexes
  std::atomic<std::int64_t> idleUs{0};         ///< parked on the pool idle CV
  std::atomic<std::int64_t> barrierWaitUs{0};  ///< simulator phase barriers
  std::atomic<std::int64_t> tasks{0};
  std::atomic<std::int64_t> steals{0};  ///< tasks taken from another worker
  std::atomic<std::int64_t> helped{0};  ///< tasks run inside TaskGroup::wait
};

/// Per-shard lock/cache accounting for one sharded structure.
struct alignas(64) ShardStats {
  std::atomic<std::int64_t> acquisitions{0};
  std::atomic<std::int64_t> contended{0};   ///< try_lock failed, had to wait
  std::atomic<std::int64_t> lockWaitUs{0};  ///< total contended wait
  std::atomic<std::int64_t> hits{0};
  std::atomic<std::int64_t> misses{0};
  /// Total open-addressing slots inspected across all probes of this shard;
  /// probeSteps / (hits + misses) is the mean probe length, the direct
  /// health check of the hash-consed tables (≈1 when the cached hashes
  /// spread well, table-sized under the degenerate-hash test hook).
  std::atomic<std::int64_t> probeSteps{0};
};

/// The sharded structures the profiler knows how to attribute. Fixed enum —
/// lookups must be branch-free index math, not registry probes.
enum class ShardFamily : std::uint8_t {
  kExprIntern = 0,   ///< sym::ExprIntern arena shards
  kMemoContext,      ///< sym::ProofMemoContext result shards (summed over contexts)
  kMemoRegistry,     ///< sym::ProofMemo context-table shards
  kPhaseInfo,        ///< loc::analyzePhaseArray result-cache shards
};
inline constexpr std::size_t kShardFamilies = 4;
inline constexpr std::size_t kMaxShardsPerFamily = 64;

[[nodiscard]] const char* shardFamilyName(ShardFamily f);

class Profiler {
 public:
  /// Enables recording and binds the calling thread as the "main" row, so a
  /// profile always has the coordinating thread even when it never touches a
  /// contended shard (workers bind themselves as "pool.wN" / "sim.pN").
  void enable() {
    threadStats("main");
    enabled_.store(true, std::memory_order_relaxed);
  }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// The calling thread's track. First use binds the thread to `name`
  /// (creating the row if new); later calls ignore `name` and return the
  /// cached binding. Rows are shared by name: successive pools' "pool.w0"
  /// workers accumulate into one row. Safe while disabled (rows register so
  /// the exported schema is stable).
  ThreadStats& threadStats(std::string_view name);

  /// Rebinds the calling thread to `name` (pool workers and sim workers call
  /// this on entry; helpers that never bind land in "main").
  void bindCurrentThread(std::string_view name);

  [[nodiscard]] ShardStats& shard(ShardFamily family, std::size_t index) noexcept {
    return shards_[static_cast<std::size_t>(family)][index % kMaxShardsPerFamily];
  }

  /// Lock-wait histogram (microseconds) of one family, fed by ShardLock.
  [[nodiscard]] Histogram& lockWaitHistogram(ShardFamily family) noexcept {
    return lockWait_[static_cast<std::size_t>(family)];
  }

  /// Microsecond clock shared with the tracer (so profile numbers and trace
  /// timestamps line up).
  [[nodiscard]] static std::int64_t nowUs();

  /// Zeroes every row and shard cell; name registrations survive, matching
  /// MetricsRegistry::reset().
  void reset();

  /// Stable-schema "ad.profile.v1" JSON: per-thread wait-vs-work rows,
  /// per-shard lock/cache rows (only shards with any traffic), per-family
  /// lock-wait histograms.
  [[nodiscard]] std::string summary() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;  ///< guards names_ registration only
  // Fixed-capacity name table: rows never move once handed out (threads cache
  // the pointer), and the profile document wants a bounded, stable row set.
  static constexpr std::size_t kMaxThreads = 64;
  struct NamedTrack {
    std::string name;
    ThreadStats stats;
  };
  NamedTrack tracks_[kMaxThreads];
  std::size_t trackCount_ = 0;
  ShardStats shards_[kShardFamilies][kMaxShardsPerFamily];
  Histogram lockWait_[kShardFamilies];
};

/// The process-wide profiler.
Profiler& profiler();

/// Mutex guard that attributes contended acquisitions to (family, shard) and
/// the calling thread. Disabled profiler: one relaxed load + plain lock.
class ShardLock {
 public:
  ShardLock(std::mutex& mu, ShardFamily family, std::size_t index) : mu_(mu) {
    Profiler& p = profiler();
    if (!p.enabled()) {
      mu_.lock();
      return;
    }
    lockContended(p, family, index);
  }
  ~ShardLock() { mu_.unlock(); }

  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  void lockContended(Profiler& p, ShardFamily family, std::size_t index);
  std::mutex& mu_;
};

}  // namespace ad::obs
