#include "obs/obs.hpp"

#include <algorithm>
#include <sstream>

namespace ad::obs {

namespace {

/// Shard index of the calling thread: threads are numbered in registration
/// order, so a fixed pool of workers spreads evenly over the cells.
std::size_t threadShard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot % Counter::kShards;
}

void appendEscaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Counter / Histogram
// ---------------------------------------------------------------------------

void Counter::add(std::int64_t n) noexcept {
  cells_[threadShard()].v.fetch_add(n, std::memory_order_relaxed);
}

std::int64_t Counter::value() const noexcept {
  std::int64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

void Counter::reset() noexcept {
  for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
}

std::int64_t Histogram::bucketBound(std::size_t i) noexcept {
  if (i + 1 >= kBuckets) return std::numeric_limits<std::int64_t>::max();
  return std::int64_t{1} << i;
}

void Histogram::observe(std::int64_t v) noexcept {
  if (v < 0) v = 0;
  std::size_t b = 0;
  while (b + 1 < kBuckets && v > bucketBound(b)) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.add(1);
  sum_.add(v);
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::count() const noexcept { return count_.value(); }
std::int64_t Histogram::sum() const noexcept { return sum_.value(); }

std::int64_t Histogram::minValue() const noexcept {
  const std::int64_t m = min_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<std::int64_t>::max() ? 0 : m;
}

std::int64_t Histogram::maxValue() const noexcept {
  const std::int64_t m = max_.load(std::memory_order_relaxed);
  return m == std::numeric_limits<std::int64_t>::min() ? 0 : m;
}

std::int64_t Histogram::bucketCount(std::size_t i) const noexcept {
  return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed) : 0;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.reset();
  sum_.reset();
  min_.store(std::numeric_limits<std::int64_t>::max(), std::memory_order_relaxed);
  max_.store(std::numeric_limits<std::int64_t>::min(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string(name), std::make_unique<Counter>()).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return *it->second;
  return *gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return *it->second;
  return *histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first->second;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricsRegistry::toJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n";
  os << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    \"";
    appendEscaped(os, name);
    os << "\": " << c->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    \"";
    appendEscaped(os, name);
    os << "\": " << g->value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n";
  os << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    \"";
    appendEscaped(os, name);
    os << "\": {\"count\": " << h->count() << ", \"sum\": " << h->sum()
       << ", \"min\": " << h->minValue() << ", \"max\": " << h->maxValue() << ", \"buckets\": [";
    // Only buckets up to the last non-empty one: keeps the document small
    // without losing information (trailing buckets are zero).
    std::size_t lastUsed = 0;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      if (h->bucketCount(i) > 0) lastUsed = i;
    }
    for (std::size_t i = 0; i <= lastUsed; ++i) {
      os << (i == 0 ? "" : ", ") << "{\"le\": " << Histogram::bucketBound(i)
         << ", \"count\": " << h->bucketCount(i) << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

// ---------------------------------------------------------------------------
// Tracer / Span
// ---------------------------------------------------------------------------

namespace {
thread_local std::int64_t g_traceTid = 0;
}  // namespace

std::int64_t Tracer::nowUs() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(TraceEvent e) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void Tracer::nameThread(std::int64_t tid, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  threadNames_[tid] = std::move(name);
}

void Tracer::setCurrentThreadId(std::int64_t tid) noexcept { g_traceTid = tid; }
std::int64_t Tracer::currentThreadId() noexcept { return g_traceTid; }

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::map<std::string, SpanStats> Tracer::statsByName() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, SpanStats> out;
  for (const auto& e : events_) {
    SpanStats& s = out[e.name];
    ++s.count;
    s.totalUs += e.dur;
  }
  return out;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  threadNames_.clear();
}

std::string Tracer::toJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const auto& [tid, name] : threadNames_) {
    os << (first ? "" : ",\n")
       << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": " << tid
       << ", \"args\": {\"name\": \"";
    appendEscaped(os, name);
    os << "\"}}";
    first = false;
  }
  for (const auto& e : events_) {
    os << (first ? "" : ",\n") << "  {\"name\": \"";
    appendEscaped(os, e.name);
    os << "\", \"cat\": \"";
    appendEscaped(os, e.cat);
    os << "\", \"ph\": \"X\", \"ts\": " << e.ts << ", \"dur\": " << e.dur
       << ", \"pid\": 1, \"tid\": " << e.tid << "}";
    first = false;
  }
  os << "\n]}\n";
  return os.str();
}

Tracer& tracer() {
  static Tracer t;
  return t;
}

Span::Span(std::string_view name, std::string_view cat) {
  Tracer& t = tracer();
  if (!t.enabled()) return;
  active_ = true;
  name_.assign(name);
  cat_.assign(cat);
  startUs_ = t.nowUs();
}

Span::~Span() {
  if (!active_) return;
  Tracer& t = tracer();
  const std::int64_t end = t.nowUs();
  t.record(TraceEvent{std::move(name_), std::move(cat_), startUs_, end - startUs_,
                      Tracer::currentThreadId()});
}

}  // namespace ad::obs
