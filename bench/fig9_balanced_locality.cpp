// Figure 9 + Equations 4-6 reproduction: the balanced locality condition.
//
// Paper: between F2 and F3,  p2 + 2QP - P = 2P*p3  has the integer solution
// p2 = P, p3 = Q, which violates the load-balance bounds (Eqs. 5-6) — so
// communication is unavoidable (short of running sequentially). Between F3
// and F4 the condition has ceil(Q/H) solutions; p3 = p4 = 1 is drawn in
// Figure 9(a)(b): both phases then cover the same region per processor.
#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "locality/analysis.hpp"

int main() {
  using namespace ad;
  bench::Reporter rep("Figure 9 / Eqs. 4-6 — the balanced locality condition");

  const ir::Program prog = codes::makeTFFT2();
  const std::int64_t H = 8;
  const std::int64_t Pv = 32;
  const std::int64_t Qv = 32;
  const auto params = codes::bindParams(prog, {{"P", Pv}, {"Q", Qv}});

  const auto f2 = loc::analyzePhaseArray(prog, 1, "X");
  const auto f3 = loc::analyzePhaseArray(prog, 2, "X");
  const auto f4 = loc::analyzePhaseArray(prog, 3, "X");

  // Equation 4.
  const auto c23 = loc::makeBalancedCondition(f2, f3);
  rep.checkTrue("F2-F3 condition formable", c23.has_value());
  if (c23) {
    rep.check("Eq. 4 form", "p2 + 2*P*Q - P = 2*P*p3",
              c23->render(prog.symbols(), "p2", "p3"));
    rep.checkTrue("Eq. 4 infeasible under load-balance bounds (-> C edge)",
                  !c23->holds(params, H));
    // Without the bounds, p2 = P, p3 = Q solves it (sequential execution) —
    // derived symbolically, exactly as the paper's prose does.
    const sym::Assumptions defaults(prog.symbols());
    const sym::RangeAnalyzer ra(defaults);
    const auto fam = c23->solveSymbolic(ra);
    rep.checkTrue("symbolic family derivable", fam.has_value());
    if (fam) {
      rep.check("smallest integer solution: p2", "P", fam->pk0.str(prog.symbols()));
      rep.check("smallest integer solution: p3", "Q", fam->pg0.str(prog.symbols()));
    }
    auto unbounded = sym::solveLinear2(1, 2 * Pv, -(2 * Qv * Pv - Pv), {1, 1 << 20}, {1, 1 << 20});
    bool found = false;
    for (auto [x, y] : unbounded.enumerate(1 << 21)) {
      found = found || (x == Pv && y == Qv);
    }
    rep.checkTrue("numeric cross-check: the (P, Q) solution exists unbounded", found);
  }

  // F3-F4: ceil(Q/H) solutions; p3 = p4 = 1 among them.
  const auto c34 = loc::makeBalancedCondition(f3, f4);
  rep.checkTrue("F3-F4 condition formable", c34.has_value());
  if (c34) {
    const auto fam = c34->solve(params, H);
    rep.checkTrue("F3-F4 balanced condition holds (-> L edge)", fam.feasible());
    rep.check("number of integer solutions = ceil(Q/H)", (Qv + H - 1) / H, fam.count());
    rep.check("smallest solution (p3, p4)", "(1, 1)",
              "(" + std::to_string(fam.smallestX().first) + ", " +
                  std::to_string(fam.smallestX().second) + ")");
    bool allEqual = true;
    for (auto [x, y] : fam.enumerate(1024)) allEqual = allEqual && x == y;
    rep.checkTrue("every solution has p3 = p4 (same chunk in both phases)", allEqual);
  }
  return rep.finish();
}
