// Shared reporting helpers for the paper-reproduction benches: each bench
// prints "paper expects X / computed Y" rows and exits nonzero on mismatch,
// so `for b in build/bench/*; do $b; done` doubles as a reproduction check.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

namespace ad::bench {

class Reporter {
 public:
  explicit Reporter(std::string title) : title_(std::move(title)) {
    std::cout << "==================================================================\n"
              << title_ << "\n"
              << "==================================================================\n";
  }

  template <typename A, typename B>
  void check(const std::string& what, const A& paper, const B& computed) {
    std::ostringstream pa;
    std::ostringstream co;
    pa << paper;
    co << computed;
    const bool ok = pa.str() == co.str();
    std::cout << (ok ? "  [ok]    " : "  [FAIL]  ") << what << ": paper = " << pa.str()
              << ", computed = " << co.str() << "\n";
    failures_ += ok ? 0 : 1;
    ++checks_;
  }

  void note(const std::string& text) { std::cout << "  " << text << "\n"; }

  void checkTrue(const std::string& what, bool ok) {
    std::cout << (ok ? "  [ok]    " : "  [FAIL]  ") << what << "\n";
    failures_ += ok ? 0 : 1;
    ++checks_;
  }

  /// Prints the summary; returns the process exit code.
  int finish() const {
    std::cout << "------------------------------------------------------------------\n"
              << title_ << ": " << (checks_ - failures_) << "/" << checks_ << " checks match\n\n";
    return failures_ == 0 ? EXIT_SUCCESS : EXIT_FAILURE;
  }

 private:
  std::string title_;
  int checks_ = 0;
  int failures_ = 0;
};

/// Writes `content` to `path`; returns false (and prints) on failure. The
/// BENCH_*.json artifacts all go through here.
inline bool writeTextFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
  if (!out) {
    std::cout << "  [FAIL]  could not write " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace ad::bench
