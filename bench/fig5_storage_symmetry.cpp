// Figure 5 reproduction: the three storage symmetries and their distances.
//
// The paper's examples give Delta_d = 17 (shifted), Delta_r = 27 (reverse)
// and Delta_s = 5 (overlapping). We build loop nests realizing exactly those
// distances and check the analysis recovers them.
#include "bench_util.hpp"
#include "descriptors/iteration_descriptor.hpp"
#include "ir/ir.hpp"

int main() {
  using namespace ad;
  using sym::Expr;
  bench::Reporter rep("Figure 5 — storage symmetry distances (Delta_d, Delta_r, Delta_s)");
  const auto c = [](std::int64_t v) { return Expr::constant(v); };

  // (a) Shifted storage, Delta_d = 17: A(3i) and A(3i + 17).
  {
    ir::Program prog;
    prog.declareArray("A", c(1000));
    const auto n = prog.symbols().parameter("N");
    ir::PhaseBuilder b(prog, "shifted");
    b.doall("i", c(0), Expr::symbol(n) - c(1));
    b.read("A", c(3) * b.idx("i"));
    b.read("A", c(3) * b.idx("i") + c(17));
    b.commit();
    prog.validate();

    auto pd = desc::buildPhaseDescriptor(prog, 0, "A");
    const auto assumptions = prog.phase(0).assumptions(prog.symbols());
    const sym::RangeAnalyzer ra(assumptions);
    desc::coalesceStrides(pd, ra);
    desc::unionTerms(pd, ra);
    const auto id = desc::buildIterationDescriptor(pd);
    const auto s = id.symmetry(0, 1, ra);
    rep.checkTrue("(a) shifted storage detected", s.shifted.has_value());
    if (s.shifted) rep.check("(a) Delta_d", 17, *s.shifted->asInteger());
  }

  // (b) Reverse storage, Delta_r = 27: A(2i) and A(27 - 2i).
  {
    ir::Program prog;
    prog.declareArray("A", c(1000));
    ir::PhaseBuilder b(prog, "reverse");
    b.doall("i", c(0), c(6));
    b.read("A", c(2) * b.idx("i"));
    b.read("A", c(27) - c(2) * b.idx("i"));
    b.commit();
    prog.validate();

    auto pd = desc::buildPhaseDescriptor(prog, 0, "A");
    const auto assumptions = prog.phase(0).assumptions(prog.symbols());
    const sym::RangeAnalyzer ra(assumptions);
    desc::coalesceStrides(pd, ra);
    desc::unionTerms(pd, ra);
    const auto id = desc::buildIterationDescriptor(pd);
    const auto s = id.symmetry(0, 1, ra);
    rep.checkTrue("(b) reverse storage detected", s.reverse.has_value());
    if (s.reverse) rep.check("(b) Delta_r", 27, *s.reverse->asInteger());
  }

  // (c) Overlapping storage, Delta_s = 5: iteration i covers [4i, 4i+8],
  // so consecutive iterations share 9 - 4 = 5 elements.
  {
    ir::Program prog;
    prog.declareArray("A", c(1000));
    const auto n = prog.symbols().parameter("N");
    ir::PhaseBuilder b(prog, "overlapping");
    b.doall("i", c(0), Expr::symbol(n) - c(1));
    b.loop("j", c(0), c(8));
    b.read("A", c(4) * b.idx("i") + b.idx("j"));
    b.commit();
    prog.validate();

    auto pd = desc::buildPhaseDescriptor(prog, 0, "A");
    const auto assumptions = prog.phase(0).assumptions(prog.symbols());
    const sym::RangeAnalyzer ra(assumptions);
    desc::coalesceStrides(pd, ra);
    desc::unionTerms(pd, ra);
    const auto id = desc::buildIterationDescriptor(pd);
    const auto ov = id.hasOverlap(ra);
    rep.checkTrue("(c) overlapping storage detected", ov.has_value() && *ov);
    const auto ds = id.overlapDistance(ra);
    rep.checkTrue("(c) Delta_s provable", ds.has_value());
    if (ds) rep.check("(c) Delta_s", 5, *ds->asInteger());
  }
  return rep.finish();
}
