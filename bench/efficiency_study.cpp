// Section 4.3 result reproduction: the six-code efficiency study.
//
// Paper: "These parallel codes were executed in a Cray T3D. We achieved
// parallel efficiencies of over 70% in the Cray for 64 processors."
//
// We run each code of the suite through the full pipeline (LCG -> ILP ->
// distributions -> communication generation) on the DSM machine model at
// H = 4..64 and report the parallel efficiency of the LCG-derived plan
// against the naive BLOCK baseline. The reproduced *shape*: every code stays
// at or above 70% efficiency at H = 64 under the derived distributions,
// while the baseline collapses on the communication-heavy codes.
//
// Absolute numbers are simulator cycles, not T3D seconds.
//
// The >70% claim is the paper's claim about its own six codes, whose
// communication is halo- or frontier-shaped and shrinks relative to compute
// as the problem grows. Two of the AI/HPC kernels (matmul, attention) are
// structurally different: every tile row reads B (resp. K/V) wholesale, and
// at study sizes the storage constraint forbids replicating those arrays, so
// remote traffic scales with compute and no distribution can reach 70% at
// H = 64. For those codes the reproduced shape is instead that the
// LCG-derived plan moves several times fewer remote words than the naive
// BLOCK baseline (EXPERIMENTS.md, "AI/HPC kernel family"). conv2d and
// stencil_tt are halo-only and are held to the same 70% bar as the paper's
// codes.
#include <iomanip>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "driver/pipeline.hpp"
#include "support/string_utils.hpp"

int main(int argc, char** argv) {
  using namespace ad;
  // --quick shrinks the problem sizes (used by CI-style smoke runs).
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  bench::Reporter rep("Efficiency study — ten codes, LCG-derived vs naive BLOCK distributions");

  const std::vector<std::int64_t> Hs = quick ? std::vector<std::int64_t>{4, 16}
                                             : std::vector<std::int64_t>{4, 16, 64};
  std::cout << "  code       H   efficiency(LCG)  efficiency(naive)  remote(LCG)  remote(naive)\n";

  for (const auto& code : codes::benchmarkSuite()) {
    const ir::Program prog = code.build();
    const bool broadcastBound = code.name == "matmul" || code.name == "attention";
    double effAt64 = -1.0;
    double naiveAt64 = -1.0;
    std::int64_t remoteAt64 = 0;
    std::int64_t naiveRemoteAt64 = 0;
    for (const std::int64_t H : Hs) {
      driver::PipelineConfig config;
      config.params = codes::bindParams(prog, quick ? code.smallParams : code.studyParams);
      config.processors = H;
      const auto result = driver::analyzeAndSimulate(prog, config);
      const double eff = result.plannedEfficiency();
      const double naive = result.naiveEfficiency();
      std::cout << "  " << padRight(code.name, 9) << padLeft(std::to_string(H), 4) << "   "
                << std::fixed << std::setprecision(3) << padLeft(std::to_string(eff).substr(0, 5), 12)
                << padLeft(std::to_string(naive).substr(0, 5), 19)
                << padLeft(std::to_string(result.planned.totalRemoteAccesses()), 13)
                << padLeft(std::to_string(result.naive.totalRemoteAccesses()), 15) << "\n";
      if (H == Hs.back()) {
        effAt64 = eff;
        naiveAt64 = naive;
        remoteAt64 = result.planned.totalRemoteAccesses();
        naiveRemoteAt64 = result.naive.totalRemoteAccesses();
      }
    }
    if (broadcastBound) {
      // Wholesale B / KV reads scale with compute, so the paper's 70% bound
      // does not apply; the plan must still beat naive by a wide margin.
      rep.checkTrue(code.name + ": LCG plan moves <= half the naive remote words at H = " +
                        std::to_string(Hs.back()) + " (broadcast-bound kernel)",
                    remoteAt64 * 2 <= naiveRemoteAt64);
    } else {
      rep.checkTrue(code.name + ": efficiency > 0.70 at H = " + std::to_string(Hs.back()) +
                        " (paper: >70% at 64 PEs)",
                    effAt64 > 0.70);
    }
    rep.checkTrue(code.name + ": LCG plan at least matches the naive baseline",
                  effAt64 >= naiveAt64 * 0.999);
  }
  return rep.finish();
}
