// Ablation studies for the design choices the framework rests on:
//
//  A. stride coalescing — without it the TFFT2 union cannot fire and the
//     descriptors keep their non-affine dimensions;
//  B. halo tolerance in the balanced condition — without it every stencil
//     edge degenerates to C (redistribution between every pair of phases);
//  C. message aggregation — aggregated puts vs one put per element run;
//  D. chunk selection — the frontier-aware ILP objective vs fixed CYCLIC(1)
//     and BLOCK chunking on the swim stencils.
#include <iomanip>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "driver/pipeline.hpp"

int main() {
  using namespace ad;
  using sym::Expr;
  bench::Reporter rep("Ablation study — coalescing, halo tolerance, aggregation, chunking");

  // ------------------------------------------------------------------ A
  {
    const ir::Program prog = codes::makeTFFT2();
    const auto assumptions = prog.phase(2).assumptions(prog.symbols());
    const sym::RangeAnalyzer ra(assumptions);

    auto without = desc::buildPhaseDescriptor(prog, 2, "X");
    const std::size_t mergedWithout = desc::unionTerms(without, ra);

    auto with = desc::buildPhaseDescriptor(prog, 2, "X");
    desc::coalesceStrides(with, ra);
    const std::size_t mergedWith = desc::unionTerms(with, ra);

    rep.note("A. stride coalescing (TFFT2 F3, array X):");
    rep.note("   without: " + std::to_string(without.terms().size()) + " terms of " +
             std::to_string(without.terms()[0].dims.size()) + " dims, " +
             std::to_string(mergedWithout) + " union merges");
    rep.note("   with:    " + std::to_string(with.terms().size()) + " terms of " +
             std::to_string(with.terms()[0].dims.size()) + " dims, " +
             std::to_string(mergedWith) + " union merges");
    rep.note("   (the union itself is robust either way — the strided abut rule");
    rep.note("    fires on the uncoalesced J dimension; coalescing removes the");
    rep.note("    non-affine dimensions so every later comparison is on a 2-D form)");
    rep.checkTrue("A: coalescing halves the descriptor dimensionality (4 -> 2)",
                  with.terms()[0].dims.size() == 2 && without.terms()[0].dims.size() == 4);
    rep.checkTrue("A: both paths converge to one unioned term",
                  with.terms().size() == 1 && without.terms().size() == 1);
  }

  // ------------------------------------------------------------------ B
  {
    const ir::Program prog = codes::makeSwim();
    const auto params = codes::bindParams(prog, {{"N", 64}});
    const std::int64_t H = 8;
    const auto lcg = lcg::buildLCG(prog, params, H);

    std::size_t localWith = 0;
    std::size_t localWithout = 0;
    std::size_t edges = 0;
    for (const auto& g : lcg.graphs()) {
      for (const auto& e : g.edges) {
        ++edges;
        if (e.label == loc::EdgeLabel::kLocal) ++localWith;
        if (!e.condition) continue;
        auto strict = *e.condition;
        strict.tolerance = Expr();  // ablate: exact region ends required
        if (e.label == loc::EdgeLabel::kLocal && strict.holds(params, H)) ++localWithout;
      }
    }
    rep.note("B. halo tolerance (swim, N = 64, H = 8): " + std::to_string(edges) + " edges");
    rep.note("   L edges with tolerance:    " + std::to_string(localWith));
    rep.note("   L edges exact-ends only:   " + std::to_string(localWithout));
    rep.checkTrue("B: tolerance is what keeps the stencil chains local",
                  localWith > localWithout);
  }

  // ------------------------------------------------------------------ C
  {
    const auto from = dsm::DataDistribution::blockCyclic(4);
    const auto to = dsm::DataDistribution::blockCyclic(64);
    const std::int64_t size = 1 << 14;
    const std::int64_t H = 8;
    const auto sched = comm::generateGlobal("X", size, from, to, H);
    std::int64_t runs = 0;
    for (const auto& m : sched.messages()) runs += static_cast<std::int64_t>(m.ranges.size());
    dsm::MachineParams machine;
    const double aggregated = sched.time(machine);
    // Without aggregation each contiguous run pays its own startup.
    const double unaggregated =
        static_cast<double>(runs) * machine.putLatency +
        static_cast<double>(sched.totalWords()) * machine.perWord;
    std::ostringstream os;
    os << "C. message aggregation (16K-element redistribution, H = 8):\n"
       << "   messages " << sched.messageCount() << " (from " << runs
       << " element runs); time " << std::fixed << std::setprecision(0) << aggregated
       << " vs " << unaggregated << " unaggregated";
    rep.note(os.str());
    rep.checkTrue("C: aggregation reduces schedule cost", aggregated < unaggregated);
    rep.checkTrue("C: at most H*(H-1) messages",
                  sched.messageCount() <= static_cast<std::size_t>(H * (H - 1)));
  }

  // ------------------------------------------------------------------ D
  {
    const ir::Program prog = codes::makeSwim();
    const auto params = codes::bindParams(prog, {{"N", 128}});
    const std::int64_t H = 8;
    driver::PipelineConfig config;
    config.params = params;
    config.processors = H;
    config.simulateBaseline = false;
    const auto ilpResult = driver::analyzeAndSimulate(prog, config);

    dsm::MachineParams machine;
    machine.processors = H;
    auto cyclic1 = ilpResult.plan;
    for (std::size_t k = 0; k < cyclic1.iteration.size(); ++k) {
      cyclic1.iteration[k].chunk = 1;
      for (auto& [arr, dists] : cyclic1.data) {
        if (dists[k].kind == dsm::DataDistribution::Kind::kBlockCyclic) {
          dists[k].block = std::max<std::int64_t>(1, dists[k].block /
                                                         ilpResult.plan.iteration[k].chunk);
        }
      }
    }
    const auto r1 = dsm::simulate(prog, params, machine, cyclic1);

    std::ostringstream os;
    os << "D. chunk selection on swim (N = 128, H = 8):\n"
       << "   ILP chunk " << ilpResult.plan.iteration[0].chunk
       << ": T_par = " << std::fixed << std::setprecision(0)
       << ilpResult.planned.parallelTime() << "\n"
       << "   CYCLIC(1): T_par = " << r1.parallelTime()
       << "  (more inter-processor boundaries -> more frontier traffic)";
    rep.note(os.str());
    rep.checkTrue("D: the frontier-aware objective beats CYCLIC(1)",
                  ilpResult.planned.parallelTime() < r1.parallelTime());
  }

  return rep.finish();
}
