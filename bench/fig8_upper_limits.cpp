// Figure 8 reproduction: upper limits UL(I3(X,i)) = 3, 11, 19 for
// i = 0, 1, 2 and the memory gap h = 4, with P = 4.
#include "bench_util.hpp"
#include "codes/tfft2.hpp"
#include "descriptors/iteration_descriptor.hpp"

int main() {
  using namespace ad;
  using sym::Expr;
  bench::Reporter rep("Figure 8 — upper limits and memory gap of X in F3 (P = 4)");

  const ir::Program prog = codes::makeTFFT2();
  const auto p = *prog.symbols().lookup("p");
  auto pd = desc::buildPhaseDescriptor(prog, 2, "X");
  const auto assumptions = prog.phase(2).assumptions(prog.symbols());
  const sym::RangeAnalyzer ra(assumptions);
  desc::coalesceStrides(pd, ra);
  desc::unionTerms(pd, ra);
  const auto id = desc::buildIterationDescriptor(pd);

  const std::map<sym::SymbolId, std::int64_t> bind{{p, 2}};  // P = 4
  const std::int64_t expectUL[] = {3, 11, 19};
  for (std::int64_t i : {0, 1, 2}) {
    const auto ul = id.upperLimit(Expr::constant(i), ra);
    rep.checkTrue("UL(I(X," + std::to_string(i) + ")) computable", ul.has_value());
    if (ul) {
      rep.check("UL(I(X," + std::to_string(i) + "))", expectUL[i],
                ul->evaluate(bind).asInteger());
    }
  }
  const auto h = id.memoryGap(ra);
  rep.checkTrue("memory gap computable", h.has_value());
  if (h) {
    rep.check("h (symbolic, = P)", "P", h->str(prog.symbols()));
    rep.check("h at P = 4", 4, h->evaluate(bind).asInteger());
  }
  return rep.finish();
}
