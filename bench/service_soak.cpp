// Overload-soak fault campaign for the analysis service (docs/SERVICE.md).
//
// Four phases against one long-lived in-process Server plus its socket
// front end:
//
//   1. flood      — thousands of concurrent mixed requests (clean /
//                   budget-starved / malformed / cancelled) from a pool of
//                   submitter threads; every clean response must stay
//                   byte-identical to the single-shot reference golden, and
//                   the shared proof memo must serve >50% of prover claims
//                   across requests (the point of a long-lived server);
//   2. faults     — the same mix with probabilistic fault injection on the
//                   handler, the prover, and the ILP search: every response
//                   stays structured (ok / degraded / error), the server
//                   never crashes, and a clean request afterwards is again
//                   byte-identical;
//   3. overload   — a synchronized burst of 8x the admission capacity
//                   against a tiny server: the overflow is shed with a
//                   retry hint, the admitted work all completes, and the
//                   drain leaves nothing in flight;
//   4. socket     — concurrent clients over a real AF_UNIX socket, then a
//                   shutdown op and a clean drain.
//
// Emits BENCH_service.json (schema ad.bench.service.v1): request counts per
// outcome, p50/p99 latency, overload shed rate, cross-request memo hit rate.
// Wall-clock numbers are reported but never gated (machine-dependent);
// scripts/bench_compare.py gates the structural fields and the memo rate.
//
// AD_SOAK_REQUESTS overrides the flood size (default 2000; the CI service
// stage uses a smaller TSan soak).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iterator>
#include <latch>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "driver/pipeline.hpp"
#include "driver/serialize.hpp"
#include "frontend/parser.hpp"
#include "obs/obs.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "support/fault.hpp"

namespace {

using ad::service::Op;
using ad::service::Request;
using ad::service::Response;
using ad::service::ResponseKind;

/// The request corpus: small ADL programs with distinct locality shapes, so
/// the flood exercises different prover claims while still re-hitting the
/// shared memo across requests.
struct Workload {
  std::string name;
  std::string source;
  std::map<std::string, std::int64_t> params;
};

constexpr int kStencilVariants = 8;

/// The corpus: two fixed programs plus a family of width-`k` halo stencils.
/// The stencil variants are structurally distinct programs (different
/// interned access descriptors), so each forces real prover work — while
/// sharing subclaims with its siblings through the process-global proof
/// memo. That cross-request sharing is exactly what a long-lived server buys
/// over per-request processes, and what the memo-hit-rate gate below
/// measures. (Repeats of an *identical* source are absorbed entirely by the
/// hash-consed arena: zero prover work, zero memo probes.)
std::vector<Workload> buildCorpus() {
  std::vector<Workload> corpus;
  corpus.push_back({"stream",
                    "param N\n"
                    "array A(N)\n"
                    "array B(N)\n"
                    "phase F1 { doall i = 0, N - 1 { write A(i) } }\n"
                    "phase F2 { doall i = 0, N - 1 { read A(i) write B(i) } }\n",
                    {{"N", 64}}});
  corpus.push_back(
      {"transpose",
       "param N\n"
       "array A(N * N)\n"
       "array B(N * N)\n"
       "phase F1 { doall i = 0, N - 1 { do j = 0, N - 1 { write A(N*i + j) } } }\n"
       "phase F2 { doall i = 0, N - 1 { do j = 0, N - 1 { read A(N*j + i) write B(N*i + j) } } }\n",
       {{"N", 16}}});
  for (int k = 1; k <= kStencilVariants; ++k) {
    const std::string ks = std::to_string(k);
    corpus.push_back({"stencil" + ks,
                      "param N\n"
                      "array U(N)\n"
                      "array V(N)\n"
                      "phase F1 { doall i = 0, N - 1 { write U(i) } }\n"
                      "phase F2 { doall i = " + ks + ", N - " + std::to_string(k + 1) +
                          " { read U(i - " + ks + ") read U(i + " + ks + ") write V(i) } }\n",
                      {{"N", 128}}});
  }
  return corpus;
}

Request makeRequest(std::string id, const Workload& w) {
  Request r;
  r.op = Op::kAnalyze;
  r.id = std::move(id);
  r.source = w.source;
  for (const auto& [k, v] : w.params) r.params[k] = v;
  r.processors = 4;
  return r;
}

std::string referenceGolden(const Workload& w) {
  const ad::ir::Program prog = ad::frontend::parseProgram(w.source);
  ad::driver::PipelineConfig config;
  config.params = ad::codes::bindParams(prog, w.params);
  config.processors = 4;
  config.simulatePlan = false;
  config.simulateBaseline = false;
  return ad::driver::serializeGolden(ad::driver::analyzeAndSimulate(prog, config), prog);
}

/// Outcome tallies shared by the flood and fault phases.
struct Tally {
  std::atomic<std::int64_t> ok{0}, degraded{0}, errors{0}, cancelled{0}, shed{0},
      goldenMismatches{0}, malformedReplies{0};
};

double percentile(std::vector<double>& samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(samples.size() - 1));
  return samples[idx];
}

}  // namespace

int main() {
  using Clock = std::chrono::steady_clock;
  ad::bench::Reporter r("Service overload soak (docs/SERVICE.md)");

  std::int64_t floodRequests = 2000;
  if (const char* env = std::getenv("AD_SOAK_REQUESTS")) {
    floodRequests = std::max<std::int64_t>(1, std::atoll(env));
  }
  const std::size_t submitters = 16;

  // Reference goldens, computed single-shot before the server exists: the
  // flood's correctness bar is byte-identity against these.
  std::map<std::string, std::string> reference;
  const std::vector<Workload> corpus = buildCorpus();
  for (const Workload& w : corpus) reference[w.name] = referenceGolden(w);

  ad::service::ServerOptions serverOptions;
  serverOptions.workers = 8;
  serverOptions.queueCapacity = 256;
  ad::service::Server server(serverOptions);

  // ------------------------------------------------------------------
  // Phase 1: the mixed flood.
  // ------------------------------------------------------------------
  Tally flood;
  std::vector<double> latenciesMs;
  std::mutex latenciesMu;
  std::atomic<std::int64_t> nextIndex{0};
  const auto floodWorker = [&] {
    std::vector<double> local;
    for (std::int64_t i = nextIndex.fetch_add(1); i < floodRequests;
         i = nextIndex.fetch_add(1)) {
      const Workload& w = corpus[static_cast<std::size_t>(i) % corpus.size()];
      Request request = makeRequest("soak-" + std::to_string(i), w);
      // Deterministic class mix: 5% budget-starved, 5% malformed source,
      // 5% unknown parameter, 5% cancelled mid-queue, 80% clean.
      const int cls = static_cast<int>(i % 20);
      if (cls == 0) request.budgetSteps = 1;
      if (cls == 1) request.source = "phase oops {";
      if (cls == 2) {
        request.params.clear();
        request.params["WRONG"] = 1;
      }
      const auto t0 = Clock::now();
      Response response;
      if (cls == 3) {
        auto handle = server.submit(std::move(request));
        handle->cancel();
        response = handle->wait();
      } else {
        response = server.call(std::move(request));
      }
      local.push_back(std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
      switch (response.kind) {
        case ResponseKind::kOk:
          flood.ok.fetch_add(1);
          if (cls != 3 && response.golden != reference[w.name]) flood.goldenMismatches.fetch_add(1);
          break;
        case ResponseKind::kDegraded:
          flood.degraded.fetch_add(1);
          if (response.degradation.empty()) flood.malformedReplies.fetch_add(1);
          break;
        case ResponseKind::kError:
          flood.errors.fetch_add(1);
          if (response.errorCode.empty() || response.error.empty()) {
            flood.malformedReplies.fetch_add(1);
          }
          break;
        case ResponseKind::kCancelled:
          flood.cancelled.fetch_add(1);
          break;
        case ResponseKind::kShed:
          flood.shed.fetch_add(1);
          break;
        default:
          flood.malformedReplies.fetch_add(1);
      }
    }
    const std::lock_guard<std::mutex> lock(latenciesMu);
    latenciesMs.insert(latenciesMs.end(), local.begin(), local.end());
  };
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < submitters; ++t) threads.emplace_back(floodWorker);
  for (auto& th : threads) th.join();
  threads.clear();

  // Lifetime rate of the process-global proof memo: the reference warm-up
  // pays the cold misses, every structurally-repeated claim afterwards hits.
  // (The flood itself adds no probes for already-seen programs — the
  // hash-consed arena absorbs them before the prover runs, which is the
  // strongest form of cross-request reuse.)
  const std::int64_t memoHits = ad::obs::metrics().counter("ad.intern.proof_hits").value();
  const std::int64_t memoMisses =
      ad::obs::metrics().counter("ad.intern.proof_misses").value();
  const double memoHitRate =
      memoHits + memoMisses > 0
          ? static_cast<double>(memoHits) / static_cast<double>(memoHits + memoMisses)
          : 0.0;
  const double p50 = percentile(latenciesMs, 0.50);
  const double p99 = percentile(latenciesMs, 0.99);

  const std::int64_t answered = flood.ok + flood.degraded + flood.errors + flood.cancelled + flood.shed;
  r.check("flood: every request answered", floodRequests, answered);
  r.checkTrue("flood: no clean-golden drift (" + std::to_string(flood.goldenMismatches.load()) +
                  " mismatches)",
              flood.goldenMismatches == 0);
  r.checkTrue("flood: no malformed replies", flood.malformedReplies == 0);
  // 5% of the mix is starved (degraded), 10% malformed (errors); the
  // cancelled 5% lands on cancelled-or-ok depending on how fast the worker
  // got there. Nothing should be shed at this queue depth.
  r.checkTrue("flood: starved requests degraded (" + std::to_string(flood.degraded.load()) + ")",
              flood.degraded >= floodRequests / 20 - 1);
  r.checkTrue("flood: malformed requests errored (" + std::to_string(flood.errors.load()) + ")",
              flood.errors >= floodRequests / 10 - 1);
  r.checkTrue("flood: nothing shed at depth 256", flood.shed == 0);
  r.checkTrue("flood: cross-request memo hit rate " + std::to_string(memoHitRate) + " > 0.5",
              memoHitRate > 0.5);
  r.note("flood: p50 " + std::to_string(p50) + " ms, p99 " + std::to_string(p99) +
         " ms across " + std::to_string(floodRequests) + " requests, " +
         std::to_string(submitters) + " submitters");

  // ------------------------------------------------------------------
  // Phase 2: the fault campaign.
  // ------------------------------------------------------------------
  const std::int64_t faultRequests = std::max<std::int64_t>(floodRequests / 10, 50);
  Tally campaign;
  if (!ad::support::FaultInjector::global()
           .configure("service.handle%10:42,prover.timeout%20:43,ilp.solve%10:44")
           .isOk()) {
    r.checkTrue("fault campaign: injector configured", false);
  }
  nextIndex.store(0);
  const auto faultWorker = [&] {
    for (std::int64_t i = nextIndex.fetch_add(1); i < faultRequests;
         i = nextIndex.fetch_add(1)) {
      const Workload& w = corpus[static_cast<std::size_t>(i) % corpus.size()];
      const Response response = server.call(makeRequest("fault-" + std::to_string(i), w));
      switch (response.kind) {
        case ResponseKind::kOk: campaign.ok.fetch_add(1); break;
        case ResponseKind::kDegraded: campaign.degraded.fetch_add(1); break;
        case ResponseKind::kError:
          campaign.errors.fetch_add(1);
          if (response.errorCode.empty()) campaign.malformedReplies.fetch_add(1);
          break;
        default: campaign.malformedReplies.fetch_add(1);
      }
    }
  };
  for (std::size_t t = 0; t < submitters; ++t) threads.emplace_back(faultWorker);
  for (auto& th : threads) th.join();
  threads.clear();
  ad::support::FaultInjector::global().clear();

  r.check("fault campaign: every request answered", faultRequests,
          campaign.ok + campaign.degraded + campaign.errors);
  r.checkTrue("fault campaign: faults surfaced (errors " + std::to_string(campaign.errors.load()) +
                  ", degraded " + std::to_string(campaign.degraded.load()) + ")",
              campaign.errors > 0 && campaign.degraded > 0);
  r.checkTrue("fault campaign: every reply structured", campaign.malformedReplies == 0);
  const Response postFault = server.call(makeRequest("post-fault", corpus[0]));
  r.checkTrue("fault campaign: clean request byte-identical afterwards",
              postFault.kind == ResponseKind::kOk &&
                  postFault.golden == reference[corpus[0].name]);

  // ------------------------------------------------------------------
  // Phase 3: the overload burst against a tiny server, then its drain.
  // ------------------------------------------------------------------
  ad::service::ServerOptions tinyOptions;
  tinyOptions.workers = 2;
  tinyOptions.queueCapacity = 8;
  tinyOptions.retryAfterMs = 5;
  ad::service::Server tiny(tinyOptions);
  const std::size_t burst = 8 * (tinyOptions.queueCapacity + tinyOptions.workers);
  Tally burstTally;
  std::latch startLine(static_cast<std::ptrdiff_t>(burst));
  for (std::size_t i = 0; i < burst; ++i) {
    threads.emplace_back([&, i] {
      Request request = makeRequest("burst-" + std::to_string(i),
                                    corpus[i % corpus.size()]);
      startLine.arrive_and_wait();  // everyone hits admission together
      const Response response = tiny.call(std::move(request));
      switch (response.kind) {
        case ResponseKind::kOk: burstTally.ok.fetch_add(1); break;
        case ResponseKind::kDegraded: burstTally.degraded.fetch_add(1); break;
        case ResponseKind::kError: burstTally.errors.fetch_add(1); break;
        case ResponseKind::kCancelled: burstTally.cancelled.fetch_add(1); break;
        case ResponseKind::kShed:
          burstTally.shed.fetch_add(1);
          if (response.retryAfterMs <= 0) burstTally.malformedReplies.fetch_add(1);
          break;
        default: burstTally.malformedReplies.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  threads.clear();
  tiny.shutdown();
  const ad::service::ServerStats tinyStats = tiny.stats();
  const double shedRate = static_cast<double>(burstTally.shed.load()) / static_cast<double>(burst);

  r.checkTrue("overload: burst sheds under pressure (" + std::to_string(burstTally.shed.load()) +
                  "/" + std::to_string(burst) + ")",
              burstTally.shed > 0);
  r.checkTrue("overload: every shed carried a retry hint", burstTally.malformedReplies == 0);
  r.checkTrue("overload: admitted work all completed",
              tinyStats.accepted == tinyStats.ok + tinyStats.degraded + tinyStats.errors +
                                        tinyStats.cancelled);
  r.check("overload: drained to zero in flight", std::int64_t{0}, tinyStats.inFlight);

  // ------------------------------------------------------------------
  // Phase 4: concurrent clients over the socket, then shutdown.
  // ------------------------------------------------------------------
  ad::service::SocketOptions socketOptions;
  socketOptions.path = "/tmp/ad_service_soak_" + std::to_string(::getpid()) + ".sock";
  ad::service::SocketServer wire(server, socketOptions);
  std::atomic<std::int64_t> socketOk{0}, socketBad{0};
  if (!wire.start().isOk()) {
    r.checkTrue("socket: server started", false);
  } else {
    const std::size_t clients = 8, perClient = 5;
    for (std::size_t c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        ad::service::Client client(socketOptions.path);
        for (std::size_t k = 0; k < perClient; ++k) {
          const Workload& w = corpus[(c + k) % corpus.size()];
          const auto response =
              client.call(makeRequest("sock-" + std::to_string(c) + "-" + std::to_string(k), w));
          const bool good = response.has_value() && response->kind == ResponseKind::kOk &&
                            response->golden == reference[w.name];
          (good ? socketOk : socketBad).fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
    threads.clear();
    r.check("socket: every client round trip byte-identical",
            static_cast<std::int64_t>(clients * perClient), socketOk.load());
    r.checkTrue("socket: no failed round trips", socketBad == 0);

    ad::service::Client controller(socketOptions.path);
    Request shutdownOp;
    shutdownOp.op = Op::kShutdown;
    const auto ack = controller.call(shutdownOp);
    r.checkTrue("socket: shutdown acknowledged",
                ack.has_value() && ack->kind == ResponseKind::kInfo);
    wire.waitForShutdownRequest();
  }
  server.shutdown();
  wire.stop();
  const ad::service::ServerStats finalStats = server.stats();
  r.check("drain: zero in flight", std::int64_t{0}, finalStats.inFlight);
  r.checkTrue("drain: accounting consistent",
              finalStats.accepted == finalStats.ok + finalStats.degraded + finalStats.errors +
                                         finalStats.cancelled);

  // ------------------------------------------------------------------
  // The artifact.
  // ------------------------------------------------------------------
  std::ostringstream json;
  json << "{\n"
       << "  \"schema\": \"ad.bench.service.v1\",\n"
       << "  \"flood\": {\n"
       << "    \"requests\": " << floodRequests << ",\n"
       << "    \"submitters\": " << submitters << ",\n"
       << "    \"ok\": " << flood.ok.load() << ",\n"
       << "    \"degraded\": " << flood.degraded.load() << ",\n"
       << "    \"errors\": " << flood.errors.load() << ",\n"
       << "    \"cancelled\": " << flood.cancelled.load() << ",\n"
       << "    \"shed\": " << flood.shed.load() << ",\n"
       << "    \"golden_mismatches\": " << flood.goldenMismatches.load() << ",\n"
       << "    \"latency_p50_ms\": " << p50 << ",\n"
       << "    \"latency_p99_ms\": " << p99 << ",\n"
       << "    \"memo_hit_rate\": " << memoHitRate << "\n"
       << "  },\n"
       << "  \"faults\": {\n"
       << "    \"requests\": " << faultRequests << ",\n"
       << "    \"ok\": " << campaign.ok.load() << ",\n"
       << "    \"degraded\": " << campaign.degraded.load() << ",\n"
       << "    \"errors\": " << campaign.errors.load() << ",\n"
       << "    \"structured\": " << (campaign.malformedReplies == 0 ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"overload\": {\n"
       << "    \"burst\": " << burst << ",\n"
       << "    \"queue_capacity\": " << tinyOptions.queueCapacity << ",\n"
       << "    \"shed\": " << burstTally.shed.load() << ",\n"
       << "    \"shed_rate\": " << shedRate << ",\n"
       << "    \"drained_clean\": "
       << (tinyStats.inFlight == 0 ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"socket\": {\n"
       << "    \"round_trips\": " << socketOk.load() << ",\n"
       << "    \"failures\": " << socketBad.load() << "\n"
       << "  },\n"
       << "  \"golden_stable\": "
       << (flood.goldenMismatches == 0 && socketBad == 0 ? "true" : "false") << ",\n"
       << "  \"drained_clean\": " << (finalStats.inFlight == 0 ? "true" : "false") << "\n"
       << "}\n";
  if (!ad::bench::writeTextFile("BENCH_service.json", json.str())) return EXIT_FAILURE;
  r.note("wrote BENCH_service.json");
  return r.finish();
}
