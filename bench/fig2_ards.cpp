// Figure 2 reproduction: the ARDs of the two X references in TFFT2 phase F3.
//
// Paper (Fig. 2):
//   A1 = ( (Q, (P-2)*2^-L + 1, P*2^-L, 2^(L-1)),
//          (2P, J*2^(L-1), 2^(L-1), 1), (1,1,1,1), tau = 0 )
//   A2 = same with tau = P/2.
#include "bench_util.hpp"
#include "codes/tfft2.hpp"
#include "descriptors/ard.hpp"

int main() {
  using namespace ad;
  using sym::Expr;
  bench::Reporter rep("Figure 2 — ARDs of X in TFFT2 phase F3");

  const ir::Program prog = codes::makeTFFT2();
  const auto& st = prog.symbols();
  const auto p = *st.lookup("p");
  const auto q = *st.lookup("q");
  const auto L = *st.lookup("L");
  const auto J = *st.lookup("J");
  const Expr P = Expr::pow2(Expr::symbol(p));
  const Expr Q = Expr::pow2(Expr::symbol(q));
  const auto c = [](std::int64_t v) { return Expr::constant(v); };

  const auto ards = desc::buildARDs(prog, prog.phase(2), "X");
  rep.check("number of distinct access functions", 2, ards.size() / 2);

  const desc::ARD& a1 = ards[0];
  rep.note("computed " + a1.str(st));
  rep.check("alpha_1 (parallel I)", Q.str(st), a1.dims[0].alpha.str(st));
  rep.check("alpha_2 (L)", ((P - c(2)) * Expr::pow2(-Expr::symbol(L)) + c(1)).str(st),
            a1.dims[1].alpha.str(st));
  rep.check("alpha_3 (J)", (P * Expr::pow2(-Expr::symbol(L))).str(st), a1.dims[2].alpha.str(st));
  rep.check("alpha_4 (K)", Expr::pow2(Expr::symbol(L) - c(1)).str(st), a1.dims[3].alpha.str(st));
  rep.check("delta_1", (c(2) * P).str(st), a1.dims[0].delta.str(st));
  rep.check("delta_2", (Expr::symbol(J) * Expr::pow2(Expr::symbol(L) - c(1))).str(st),
            a1.dims[1].delta.str(st));
  rep.check("delta_3", Expr::pow2(Expr::symbol(L) - c(1)).str(st), a1.dims[2].delta.str(st));
  rep.check("delta_4", 1, *a1.dims[3].delta.asInteger());
  for (int i = 0; i < 4; ++i) {
    rep.check("lambda_" + std::to_string(i + 1), 1, a1.dims[static_cast<std::size_t>(i)].lambda);
  }
  rep.check("tau_1", "0", a1.tau.str(st));

  const desc::ARD& a2 = ards[2];
  rep.note("computed " + a2.str(st));
  rep.check("tau_2 = P/2", Expr::pow2(Expr::symbol(p) - c(1)).str(st), a2.tau.str(st));
  bool sameVectors = true;
  for (std::size_t i = 0; i < 4; ++i) {
    sameVectors = sameVectors && a2.dims[i].alpha == a1.dims[i].alpha &&
                  a2.dims[i].delta == a1.dims[i].delta && a2.dims[i].lambda == a1.dims[i].lambda;
  }
  rep.checkTrue("A2 shares A1's alpha/delta/lambda vectors", sameVectors);
  return rep.finish();
}
