// Closed-form symbolic validation at paper scale.
//
// The enumerating trace simulator is O(accesses * threads): exact, but it
// cannot reach the machine sizes the paper analyzes (P = 1024). The symbolic
// validator computes the identical observed trace in O(descriptor regions).
// This bench demonstrates both claims:
//
//   - differential: at P in {4, 8} both oracles run and must agree exactly
//     (the same invariant tests/symval_test.cpp enforces);
//   - scale: at P in {64, 1024} only the symbolic oracle runs; its wall time
//     must stay under 100 ms per code at P = 64, and BENCH_symval.json
//     records it next to the simulator's extrapolated cost (accesses divided
//     by the replay rate measured at P = 4).
//
// Emits BENCH_symval.json, consumed by `scripts/ci.sh symval`.
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "driver/pipeline.hpp"

namespace {

struct Run {
  std::int64_t processors = 0;
  std::int64_t accesses = 0;
  double symvalSeconds = 0.0;
  double simExtrapolatedSeconds = 0.0;  ///< accesses / replay rate at P=4
  double localFraction = 0.0;
  std::int64_t closedFormRegions = 0;
  std::int64_t enumeratedRegions = 0;
  bool differentialRan = false;  ///< both oracles ran (P in {4, 8})
  bool agrees = false;           ///< traces byte-identical (differential runs only)
};

struct CodeResult {
  std::string name;
  std::map<std::string, std::int64_t> params;
  std::vector<Run> runs;
};

std::string toJson(const std::vector<CodeResult>& results) {
  std::ostringstream os;
  os << std::setprecision(6);
  os << "{\n  \"benchmark\": \"symbolic_validation\",\n  \"codes\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& r = results[c];
    os << "    {\n      \"name\": \"" << r.name << "\",\n      \"params\": {";
    bool first = true;
    for (const auto& [k, v] : r.params) {
      os << (first ? "" : ", ") << "\"" << k << "\": " << v;
      first = false;
    }
    os << "},\n      \"runs\": [\n";
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
      const auto& run = r.runs[i];
      os << "        {\"processors\": " << run.processors << ", \"accesses\": " << run.accesses
         << ", \"symval_seconds\": " << run.symvalSeconds
         << ", \"sim_extrapolated_seconds\": " << run.simExtrapolatedSeconds
         << ", \"local_fraction\": " << run.localFraction
         << ", \"closed_form_regions\": " << run.closedFormRegions
         << ", \"enumerated_regions\": " << run.enumeratedRegions << ", \"differential\": "
         << (run.differentialRan ? (run.agrees ? "\"agree\"" : "\"MISMATCH\"") : "null") << "}"
         << (i + 1 < r.runs.size() ? "," : "") << "\n";
    }
    os << "      ]\n    }" << (c + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main() {
  using namespace ad;
  bench::Reporter rep("Symbolic validation: differential at P in {4,8}, closed form to P=1024");

  const std::vector<std::int64_t> processorCounts = {4, 8, 64, 1024};
  std::vector<CodeResult> results;

  for (const auto& code : codes::benchmarkSuite()) {
    const ir::Program program = code.build();
    CodeResult cr;
    cr.name = code.name;
    cr.params = code.simParams;
    double replayRate = 0.0;  // simulator accesses/sec, measured at P = 4

    for (const std::int64_t H : processorCounts) {
      const bool differential = H <= 8;  // the simulator spawns H real threads
      driver::PipelineConfig config;
      config.params = codes::bindParams(program, code.simParams);
      config.processors = H;
      config.simulatePlan = false;
      config.simulateBaseline = false;
      config.validate =
          differential ? driver::ValidateMode::kBoth : driver::ValidateMode::kSymbolic;

      const auto result = driver::analyzeAndSimulate(program, config);
      Run run;
      run.processors = H;
      run.accesses = result.symbolic->totalAccesses;
      run.symvalSeconds = result.symbolic->wallSeconds;
      run.localFraction = result.symbolic->localFraction();
      run.closedFormRegions = result.symbolic->closedFormRegions;
      run.enumeratedRegions = result.symbolic->enumeratedRegions;
      run.differentialRan = differential;
      run.agrees = differential && result.symbolicAgrees();
      if (differential && result.trace->accessesPerSecond() > 0.0) {
        replayRate = result.trace->accessesPerSecond();
      }
      if (replayRate > 0.0) {
        run.simExtrapolatedSeconds = static_cast<double>(run.accesses) / replayRate;
      }
      cr.runs.push_back(run);

      std::ostringstream what;
      what << code.name << " H=" << H << ": " << run.accesses << " accesses in "
           << std::setprecision(3) << run.symvalSeconds * 1e3 << " ms ("
           << run.closedFormRegions << " closed-form regions, " << run.enumeratedRegions
           << " enumerated)";
      if (differential) {
        what << (run.agrees ? " — oracles agree" : " — ORACLE MISMATCH");
        rep.checkTrue(what.str(), run.agrees);
        if (!run.agrees) rep.note("  " + result.symbolicDifference);
      } else {
        rep.note(what.str());
      }
      if (H == 64) {
        std::ostringstream bound;
        bound << code.name << " H=64 symbolic validation under 100 ms ("
              << std::setprecision(3) << run.symvalSeconds * 1e3 << " ms)";
        rep.checkTrue(bound.str(), run.symvalSeconds < 0.100);
      }
    }
    results.push_back(std::move(cr));
  }

  if (bench::writeTextFile("BENCH_symval.json", toJson(results))) {
    rep.note("wrote BENCH_symval.json");
  }
  return rep.finish();
}
