// Figure 3 reproduction: the phase-descriptor simplification chain for X in
// TFFT2's F3.
//
// Paper: (a) raw PD with delta = (2P, J*2^(L-1), 2^(L-1), 1);
//        (b) stride coalescing removes delta_3 (contiguity merge);
//        (c) stride coalescing removes the non-affine delta_2 (subsumption),
//            leaving delta = (2P, 1), alpha rows (Q, P/2), tau = (0, P/2);
//        (d) access-descriptor union merges the two rows into alpha = (Q, P),
//            tau = 0.
#include "bench_util.hpp"
#include "codes/tfft2.hpp"
#include "descriptors/phase_descriptor.hpp"

int main() {
  using namespace ad;
  using sym::Expr;
  bench::Reporter rep("Figure 3 — PD simplification chain (stride coalescing + union)");

  const ir::Program prog = codes::makeTFFT2();
  const auto& st = prog.symbols();
  const auto p = *st.lookup("p");
  const Expr P = Expr::pow2(Expr::symbol(p));
  const Expr Q = Expr::pow2(Expr::symbol(*st.lookup("q")));
  const auto c = [](std::int64_t v) { return Expr::constant(v); };

  auto pd = desc::buildPhaseDescriptor(prog, 2, "X");
  rep.note("(a) raw PD:\n" + pd.str(st));
  rep.check("(a) dims per term", 4, pd.terms()[0].dims.size());

  const auto assumptions = prog.phase(2).assumptions(st);
  const sym::RangeAnalyzer ra(assumptions);

  const std::size_t removed = desc::coalesceStrides(pd, ra);
  rep.note("(b)+(c) after stride coalescing:\n" + pd.str(st));
  rep.check("coalescing removes two dims per term", 2, removed / pd.terms().size());
  rep.check("(c) remaining delta = (2P, 1): parallel stride", (c(2) * P).str(st),
            pd.terms()[0].dims[0].delta.str(st));
  rep.check("(c) remaining sequential stride", 1, *pd.terms()[0].dims[1].delta.asInteger());
  rep.check("(c) alpha row = (Q, P/2): Q", Q.str(st), pd.terms()[0].dims[0].alpha.str(st));
  rep.check("(c) alpha row P/2", Expr::pow2(Expr::symbol(p) - c(1)).str(st),
            pd.terms()[0].dims[1].alpha.str(st));

  desc::unionTerms(pd, ra);
  rep.note("(d) after access-descriptor union:\n" + pd.str(st));
  rep.check("(d) single term", 1, pd.terms().size());
  rep.check("(d) alpha = (Q, P): P", P.str(st), pd.terms()[0].dims[1].alpha.str(st));
  rep.check("(d) tau", "0", pd.terms()[0].tau.str(st));
  return rep.finish();
}
