// Synthetic stencil-code generator for the scaling benches.
//
// Real DSM workloads are not six codes — they are hundreds of loop nests
// drawn from a handful of recurring stride/offset families (unit-stride
// rows, row halos, column halos, five-point stars...). The generator
// reproduces that shape in the mini-Fortran frontend: every generated code
// is a chain of stencil phases whose subscript expressions are picked from a
// small set of shared families, so a batch of N generated codes gives the
// proof memo exactly the cross-code redundancy the paper's descriptor
// algebra exhibits on real programs, while every code still parses, builds
// IR, and analyzes through the full pipeline.
//
// Determinism: generation is a pure function of (family, variant) — the
// bench workload is identical on every run and every machine.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ad::bench {

/// One stencil offset family: subscript expressions over the canonical
/// `N*i + j` row-major walk. Families are what recur across codes.
inline const std::vector<std::vector<std::string>>& offsetFamilies() {
  static const std::vector<std::vector<std::string>> families = {
      // unit-stride row with right halo
      {"N*i + j", "N*i + j + 1"},
      // row with both halos
      {"N*i + j", "N*i + j - 1", "N*i + j + 1"},
      // column halo below
      {"N*i + j", "N*i + N + j"},
      // column halos both sides
      {"N*i + j", "N*i - N + j", "N*i + N + j"},
      // five-point star
      {"N*i + j", "N*i + j - 1", "N*i + j + 1", "N*i - N + j", "N*i + N + j"},
      // strided gather (stride-2 row)
      {"N*i + 2*j", "N*i + 2*j + 1"},
  };
  return families;
}

/// Mini-Fortran source of generated code (family, variant). Structure:
///  - arrays A0..Ap (one per phase boundary), all N*N;
///  - phase k reads Ak through a rotated slice of the family's offsets and
///    writes A(k+1) at the canonical point — a locality chain like swim's;
///  - the phase count cycles 2/3/4 with the variant, the offset slice
///    rotates with (variant + phase), so codes overlap heavily in their
///    stride expressions without being byte-identical.
inline std::string generateStencilSource(std::size_t family, std::size_t variant) {
  const auto& fam = offsetFamilies()[family % offsetFamilies().size()];
  const std::size_t phases = 2 + variant % 3;
  std::string src = "param N\n";
  for (std::size_t a = 0; a <= phases; ++a) {
    src += "array A" + std::to_string(a) + "(N*N)\n";
  }
  if (variant % 4 == 0) src += "cyclic\n";
  for (std::size_t k = 0; k < phases; ++k) {
    const std::size_t width = 1 + (variant + k) % fam.size();
    src += "phase S" + std::to_string(k) + " {\n";
    src += "  doall i = 1, N - 2 {\n";
    src += "    do j = 1, N - 2 {\n";
    for (std::size_t o = 0; o <= width; ++o) {
      const std::string& off = fam[(variant + k + o) % fam.size()];
      src += "      read A" + std::to_string(k) + "(" + off + ")\n";
    }
    src += "      write A" + std::to_string(k + 1) + "(N*i + j)\n";
    src += "    }\n  }\n";
    if (k % 2 == 0) src += "  work 2.0\n";
    src += "}\n";
  }
  return src;
}

/// Display label of generated code (family, variant), e.g. "gen.f2v07".
inline std::string generatedLabel(std::size_t family, std::size_t variant) {
  std::string label = "gen.f" + std::to_string(family) + "v";
  if (variant < 10) label += '0';
  label += std::to_string(variant);
  return label;
}

/// Variants of the pow2 butterfly family (generatePow2Source).
inline constexpr std::size_t kPow2Variants = 6;

/// Mini-Fortran source of a pow2 "butterfly" code, TFFT2's cost class: a
/// ping-pong chain of phases over arrays A/B/C whose subscripts carry
/// 2^(l-1) terms, so every phase is expensive for the prover (pow2 offset
/// reasoning) rather than stencil-cheap. All variants compose their phases
/// from the same pool of six kernels — two butterfly templates crossed with
/// the three (src, dst) array pairs — and differ in chain length, kernel
/// rotation, and per-phase work weight. That is the redundancy profile of a
/// real FFT library (few distinct stages, many arrangements): the serial
/// engine re-derives each stage per code and per processor count, while the
/// memoized engine analyzes each pool kernel once.
inline std::string generatePow2Source(std::size_t variant) {
  static const char* const names[3] = {"A", "B", "C"};
  const std::size_t phases = 3 + variant % 2;
  std::string src = "pow2param N = 2^n\n";
  for (const char* a : names) src += std::string("array ") + a + "(2*N + 1)\n";
  for (std::size_t t = 0; t < phases; ++t) {
    const std::string in = names[t % 3];
    const std::string out = names[(t + 1) % 3];
    const std::size_t tpl = (variant + t) % 2;
    src += "phase S" + std::to_string(t) + " {\n";
    src += "  doall i = 0, 3 {\n";
    src += "    do l = 1, n {\n";
    src += "      do j = 0, N - 1 {\n";
    if (tpl == 0) {
      // Butterfly gather: paired reads 2^(l-1) apart, unit-stride write.
      src += "        read " + in + "(j + 2^(l-1) + i)\n";
      src += "        read " + in + "(j + i)\n";
      src += "        write " + out + "(j + i)\n";
    } else {
      // Butterfly scatter: unit-stride read, write shifted by 2^(l-1).
      src += "        read " + in + "(j + i)\n";
      src += "        write " + out + "(j + 2^(l-1) + i)\n";
    }
    src += "      }\n    }\n  }\n";
    src += "  work " + std::to_string(1 + variant % 5) + ".0\n";
    src += "}\n";
  }
  return src;
}

/// Display label of pow2 butterfly code `variant`, e.g. "gen.pow2v3".
inline std::string pow2Label(std::size_t variant) {
  return "gen.pow2v" + std::to_string(variant);
}

}  // namespace ad::bench
