// Figure 7 reproduction: the three situations of Theorem 1 (intra-phase
// locality), shown on constructed phases and confirmed by simulation.
//
//   (a) Y privatizable                 -> all accesses local
//   (b) Y non-privatizable, no overlap -> all accesses local
//   (c) X non-privatizable, overlapping, read-only
//                                      -> local through replicated halos
//   (-) the fourth combination (overlap + writes) needs communication and is
//       exactly the case Table 1 sends to C.
#include "bench_util.hpp"
#include "driver/pipeline.hpp"
#include "frontend/parser.hpp"

int main() {
  using namespace ad;
  bench::Reporter rep("Figure 7 — the Theorem 1 intra-phase locality cases");

  const auto prog = frontend::parseProgram(R"(
    param N
    array Y(N*4)
    array X(N + 2)
    array OUT(N*4)

    # (a) Y is per-iteration workspace.
    phase caseA {
      doall i = 0, N - 1 {
        do j = 0, 3 {
          write Y(4*i + j)
          read Y(4*i + j)
          write OUT(4*i + j)
        }
      }
      private Y
    }

    # (b) disjoint per-iteration regions of Y.
    phase caseB {
      doall i = 0, N - 1 {
        do j = 0, 3 {
          update Y(4*i + j)
        }
      }
    }

    # (c) overlapping reads of X (a 3-point gather), writes elsewhere.
    phase caseC {
      doall i = 0, N - 1 {
        read X(i)
        read X(i + 1)
        read X(i + 2)
        write OUT(i)
      }
    }
  )");
  const auto n = *prog.symbols().lookup("N");
  const ir::Bindings params{{n, 64}};

  const auto infoA = loc::analyzePhaseArray(prog, 0, "Y");
  const auto infoB = loc::analyzePhaseArray(prog, 1, "Y");
  const auto infoC = loc::analyzePhaseArray(prog, 2, "X");

  rep.check("(a) attribute", "P", loc::attrName(infoA.attr));
  rep.check("(a) Theorem 1", "local", loc::intraPhaseName(loc::intraPhaseLocality(infoA)));
  rep.check("(b) overlap exists", "no", infoB.overlap.value_or(true) ? "yes" : "no");
  rep.check("(b) Theorem 1", "local", loc::intraPhaseName(loc::intraPhaseLocality(infoB)));
  rep.check("(c) attribute", "R", loc::attrName(infoC.attr));
  rep.check("(c) overlap exists", "yes", infoC.overlap.value_or(false) ? "yes" : "no");
  rep.check("(c) Theorem 1", "local (replicated overlap)",
            loc::intraPhaseName(loc::intraPhaseLocality(infoC)));

  // The fourth combination: overlap + writes.
  const auto progBad = frontend::parseProgram(R"(
    param N
    array Z(N + 2)
    phase writerphase {
      doall i = 0, N - 1 {
        write Z(i)
        write Z(i + 1)
      }
    }
  )");
  const auto nb = *progBad.symbols().lookup("N");
  static_cast<void>(nb);
  const auto infoBad = loc::analyzePhaseArray(progBad, 0, "Z");
  rep.check("(d) overlap + writes: Theorem 1", "needs update communication",
            loc::intraPhaseName(loc::intraPhaseLocality(infoBad)));

  // Simulation confirms the three local cases run without remote accesses.
  driver::PipelineConfig config;
  config.params = params;
  config.processors = 4;
  config.simulateBaseline = false;
  const auto result = driver::analyzeAndSimulate(prog, config);
  for (const auto& ph : result.planned.phases) {
    rep.check("simulated remote accesses in " + ph.phase, 0, ph.remoteAccesses);
  }
  return rep.finish();
}
