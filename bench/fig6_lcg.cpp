// Figure 6 reproduction: the Locality-Communication Graph of the eight-phase
// TFFT2 section — node attributes and L/C/D edge labels for arrays X and Y.
//
// Paper: X attributes R,W,R/W,R,W,R/W,R,W with edges C,C,L,L,L,L,L;
//        Y attributes W,R,P,W,R,P,W,R with edges L,D,D,L,D,D,L (the D edges
//        are the dashed un-coupled pairs around the privatizing phases).
// Note: the paper's figure prints the F4->F5 Y edge ambiguously; our
// reconstruction (which reproduces every Table 2 constraint) yields L there,
// consistent with the table's locality-constraint count.
#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "lcg/lcg.hpp"

int main() {
  using namespace ad;
  bench::Reporter rep("Figure 6 — LCG of the TFFT2 section (P = Q = 32, H = 8)");

  const ir::Program prog = codes::makeTFFT2();
  const auto params = codes::bindParams(prog, {{"P", 32}, {"Q", 32}});
  const auto lcg = lcg::buildLCG(prog, params, 8);
  rep.note("\n" + lcg.str());

  const char* expectAttrX[] = {"R", "W", "R/W", "R", "W", "R/W", "R", "W"};
  const char* expectAttrY[] = {"W", "R", "P", "W", "R", "P", "W", "R"};
  const char* expectEdgeX[] = {"C", "C", "L", "L", "L", "L", "L"};
  const char* expectEdgeY[] = {"L", "D", "D", "L", "D", "D", "L"};

  const auto& gx = lcg.graph("X");
  const auto& gy = lcg.graph("Y");
  for (std::size_t k = 0; k < 8; ++k) {
    rep.check("X attr at F" + std::to_string(k + 1), expectAttrX[k],
              loc::attrName(gx.nodes[k].attr));
    rep.check("Y attr at F" + std::to_string(k + 1), expectAttrY[k],
              loc::attrName(gy.nodes[k].attr));
  }
  for (std::size_t e = 0; e < 7; ++e) {
    const std::string tag = "F" + std::to_string(e + 1) + "->F" + std::to_string(e + 2);
    rep.check("X edge " + tag, expectEdgeX[e], loc::edgeLabelName(gx.edges[e].label));
    rep.check("Y edge " + tag, expectEdgeY[e], loc::edgeLabelName(gy.edges[e].label));
  }
  rep.check("communication points (C edges)", 2, lcg.communicationEdges());
  rep.check("X chains", 3, gx.chains().size());
  rep.check("Y chains", 5, gy.chains().size());
  rep.note("Graphviz available via LCG::dot() (see examples/tfft2_pipeline).");
  return rep.finish();
}
