// AI/HPC kernel workload family: full-pipeline locality results under both
// binding classes, gated by the differential oracle pair.
//
// The four kernels (codes/kernels.hpp) are the AutoLALA-style loop nests the
// descriptor algebra is judged on: tiled matmul, K x K sliding-window conv,
// blocked attention, and a time-tiled batched stencil. Each runs the whole
// pipeline at H in {1, 4, 8} under --validate=both (enumerating simulator vs
// closed-form symbolic oracle), twice per kernel: once with the deliberately
// non-power-of-two small sizes and once with the power-of-two sim sizes.
// Nothing in the locality structure may depend on the binding class.
//
// Checked here (nonzero exit on failure):
//   - both oracles agree exactly on every run (24 differential pairs);
//   - the Theorem-1/2 locality check passes on every run;
//   - the derived plan never loses to the naive BLOCK baseline (<= 1.05x);
//   - the C-edge count matches the kernel's documented communication
//     structure (matmul 1, conv2d 0, attention 2, stencil_tt 0) under BOTH
//     binding classes — a pow2-only simplification that changed the LCG
//     would trip this.
//
// Emits BENCH_kernels.json (schema ad.bench.kernels.v1), diffed against
// bench/baselines/BENCH_kernels.json by scripts/bench_compare.py
// (compare_kernels): every structural metric is exact, so a drifted halo
// width, region count or redistribution shows up as a readable failure.
#include <cstdint>
#include <iomanip>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "driver/pipeline.hpp"

namespace {

struct Run {
  std::int64_t processors = 0;
  std::int64_t accesses = 0;
  double localFraction = 0.0;
  std::size_t commEdges = 0;
  std::size_t redistributions = 0;
  std::int64_t closedFormRegions = 0;
  double plannedTime = 0.0;
  double naiveTime = 0.0;
  bool agrees = false;       ///< the two oracles produced identical traces
  bool localityOk = false;   ///< Theorem-1/2 check against the observed trace
};

struct Binding {
  std::string className;  ///< "nonpow2" | "pow2"
  std::map<std::string, std::int64_t> params;
  std::vector<Run> runs;
};

struct KernelResult {
  std::string name;
  std::vector<Binding> bindings;
};

std::string toJson(const std::vector<KernelResult>& results) {
  std::ostringstream os;
  os << std::setprecision(12);
  os << "{\n  \"schema\": \"ad.bench.kernels.v1\",\n  \"kernels\": [\n";
  for (std::size_t k = 0; k < results.size(); ++k) {
    const auto& kr = results[k];
    os << "    {\n      \"name\": \"" << kr.name << "\",\n      \"bindings\": [\n";
    for (std::size_t b = 0; b < kr.bindings.size(); ++b) {
      const auto& binding = kr.bindings[b];
      os << "        {\"class\": \"" << binding.className << "\", \"params\": {";
      bool first = true;
      for (const auto& [key, value] : binding.params) {
        os << (first ? "" : ", ") << "\"" << key << "\": " << value;
        first = false;
      }
      os << "},\n         \"runs\": [\n";
      for (std::size_t i = 0; i < binding.runs.size(); ++i) {
        const auto& run = binding.runs[i];
        os << "           {\"processors\": " << run.processors
           << ", \"accesses\": " << run.accesses
           << ", \"local_fraction\": " << run.localFraction
           << ", \"comm_edges\": " << run.commEdges
           << ", \"redistributions\": " << run.redistributions
           << ", \"closed_form_regions\": " << run.closedFormRegions
           << ", \"planned_time\": " << run.plannedTime
           << ", \"naive_time\": " << run.naiveTime << ", \"differential\": \""
           << (run.agrees ? "agree" : "MISMATCH") << "\", \"locality_check\": \""
           << (run.localityOk ? "ok" : "FAILED") << "\"}"
           << (i + 1 < binding.runs.size() ? "," : "") << "\n";
      }
      os << "         ]}" << (b + 1 < kr.bindings.size() ? "," : "") << "\n";
    }
    os << "      ]\n    }" << (k + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

}  // namespace

int main() {
  using namespace ad;
  bench::Reporter rep(
      "AI/HPC kernel family: differential validation under pow2 and non-pow2 bindings");

  // name -> documented C-edge count at H = 8 (see codes/kernels.hpp and the
  // structural tests in tests/codes_test.cpp): matmul pays one C edge each
  // for A and B, attention one each for K and V; conv2d's halo and the
  // stencil's batch-local chains are communication-free. H = 1 runs always
  // label every edge L (one processor owns everything), so the structural
  // check reads the H = 8 run.
  const std::map<std::string, std::size_t> expectedCommEdges = {
      {"matmul", 2}, {"conv2d", 0}, {"attention", 2}, {"stencil_tt", 0}};
  const std::vector<std::int64_t> processorCounts = {1, 4, 8};

  std::vector<KernelResult> results;
  for (const auto& code : codes::benchmarkSuite()) {
    if (!expectedCommEdges.count(code.name)) continue;
    const ir::Program program = code.build();
    KernelResult kr;
    kr.name = code.name;

    const std::vector<std::pair<std::string, const std::map<std::string, std::int64_t>*>>
        bindingClasses = {{"nonpow2", &code.smallParams}, {"pow2", &code.simParams}};
    for (const auto& [className, params] : bindingClasses) {
      Binding binding;
      binding.className = className;
      binding.params = *params;
      for (const std::int64_t H : processorCounts) {
        driver::PipelineConfig config;
        config.params = codes::bindParams(program, *params);
        config.processors = H;
        config.validate = driver::ValidateMode::kBoth;
        const auto result = driver::analyzeAndSimulate(program, config);

        Run run;
        run.processors = H;
        run.accesses = result.symbolic->totalAccesses;
        run.localFraction = result.symbolic->localFraction();
        run.commEdges = result.lcg.communicationEdges();
        run.redistributions = result.planned.redistributions.size();
        run.closedFormRegions = result.symbolic->closedFormRegions;
        run.plannedTime = result.planned.parallelTime();
        run.naiveTime = result.naive.parallelTime();
        run.agrees = result.symbolicAgrees();
        run.localityOk = result.localityCheck && result.localityCheck->ok();
        binding.runs.push_back(run);

        std::ostringstream what;
        what << code.name << " [" << className << "] H=" << H << ": " << run.accesses
             << " accesses, local fraction " << std::setprecision(4) << run.localFraction
             << ", " << run.commEdges << " C edges, " << run.redistributions
             << " redistributions";
        rep.checkTrue(what.str() + " — oracles agree", run.agrees);
        if (!run.agrees) rep.note("  " + result.symbolicDifference);
        rep.checkTrue(code.name + " [" + className + "] H=" + std::to_string(H) +
                          " Theorem-1/2 locality check",
                      run.localityOk);
        rep.checkTrue(code.name + " [" + className + "] H=" + std::to_string(H) +
                          " plan beats (or matches) the BLOCK baseline",
                      run.plannedTime <= run.naiveTime * 1.05);
      }
      rep.check(code.name + " [" + className + "] C edges at H=8",
                expectedCommEdges.at(code.name), binding.runs.back().commEdges);
      kr.bindings.push_back(std::move(binding));
    }
    results.push_back(std::move(kr));
  }

  rep.checkTrue("all four kernels ran under both binding classes", results.size() == 4);

  if (bench::writeTextFile("BENCH_kernels.json", toJson(results))) {
    rep.note("wrote BENCH_kernels.json");
  }
  return rep.finish();
}
