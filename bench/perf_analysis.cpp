// Performance micro-benchmarks of the analysis itself (google-benchmark):
// how fast the compiler-side machinery runs — symbolic algebra, descriptor
// construction and simplification, LCG building, ILP solving and the DSM
// replay. The paper reports its GAMS solves took "a few seconds on an
// R10000"; our whole pipeline runs in milliseconds.
#include <benchmark/benchmark.h>

#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "descriptors/iteration_descriptor.hpp"
#include "driver/pipeline.hpp"
#include "frontend/parser.hpp"

namespace {

using namespace ad;

void BM_ExprNormalization(benchmark::State& state) {
  sym::SymbolTable st;
  const auto p = st.pow2Parameter("P", "p");
  const auto i = st.index("I");
  const auto l = st.index("L");
  const auto j = st.index("J");
  const auto k = st.index("K");
  for (auto _ : state) {
    using sym::Expr;
    Expr phi = Expr::constant(2) * Expr::pow2(Expr::symbol(p)) * Expr::symbol(i) +
               Expr::pow2(Expr::symbol(l) - Expr::constant(1)) * Expr::symbol(j) +
               Expr::symbol(k);
    benchmark::DoNotOptimize(phi.substitute(l, Expr::symbol(l) + Expr::constant(1)) - phi);
  }
}
BENCHMARK(BM_ExprNormalization);

void BM_ParseTFFT2PhaseF3(benchmark::State& state) {
  const std::string source = R"(
    pow2param P = 2^p
    pow2param Q = 2^q
    array X(2*P*Q)
    phase F3 {
      doall I = 0, Q - 1 {
        do L = 1, p {
          do J = 0, P * 2^(-L) - 1 {
            do K = 0, 2^(L-1) - 1 {
              update X(2*P*I + 2^(L-1)*J + K)
              update X(2*P*I + 2^(L-1)*J + K + P/2)
            }
          }
        }
      }
    }
  )";
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend::parseProgram(source));
  }
}
BENCHMARK(BM_ParseTFFT2PhaseF3);

void BM_BuildAndSimplifyPD(benchmark::State& state) {
  const ir::Program prog = codes::makeTFFT2();
  const auto assumptions = prog.phase(2).assumptions(prog.symbols());
  for (auto _ : state) {
    sym::RangeAnalyzer ra(assumptions);
    auto pd = desc::buildPhaseDescriptor(prog, 2, "X");
    desc::coalesceStrides(pd, ra);
    desc::unionTerms(pd, ra);
    benchmark::DoNotOptimize(pd);
  }
}
BENCHMARK(BM_BuildAndSimplifyPD);

void BM_AnalyzePhaseArray(benchmark::State& state) {
  const ir::Program prog = codes::makeTFFT2();
  for (auto _ : state) {
    benchmark::DoNotOptimize(loc::analyzePhaseArray(prog, 2, "X"));
  }
}
BENCHMARK(BM_AnalyzePhaseArray);

void BM_BuildLCG(benchmark::State& state) {
  const ir::Program prog = codes::makeTFFT2();
  const auto params = codes::bindParams(prog, {{"P", 64}, {"Q", 64}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(lcg::buildLCG(prog, params, 8));
  }
}
BENCHMARK(BM_BuildLCG);

void BM_SolveILP(benchmark::State& state) {
  const ir::Program prog = codes::makeTFFT2();
  const auto params = codes::bindParams(prog, {{"P", 64}, {"Q", 64}});
  const auto lcgGraph = lcg::buildLCG(prog, params, 8);
  const auto model = ilp::buildModel(lcgGraph, params, 8, ilp::CostParams{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve());
  }
}
BENCHMARK(BM_SolveILP);

void BM_FullPipeline(benchmark::State& state) {
  // Analysis only (no simulation): program in, distributions out.
  const ir::Program prog = codes::makeTFFT2();
  driver::PipelineConfig config;
  config.params = codes::bindParams(prog, {{"P", 32}, {"Q", 32}});
  config.processors = 8;
  config.simulateBaseline = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver::analyzeAndSimulate(prog, config));
  }
}
BENCHMARK(BM_FullPipeline)->Unit(benchmark::kMillisecond);

void BM_SimulatedReplay(benchmark::State& state) {
  // DSM replay throughput in simulated accesses per second.
  const ir::Program prog = codes::makeSwim();
  const auto params = codes::bindParams(prog, {{"N", static_cast<std::int64_t>(state.range(0))}});
  dsm::MachineParams machine;
  machine.processors = 8;
  const auto plan = dsm::ExecutionPlan::naiveBlock(prog, params, machine.processors);
  std::int64_t accesses = 0;
  for (auto _ : state) {
    const auto result = dsm::simulate(prog, params, machine, plan);
    accesses = 0;
    for (const auto& ph : result.phases) accesses += ph.localAccesses + ph.remoteAccesses;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * accesses);
}
BENCHMARK(BM_SimulatedReplay)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_RedistributionScheduling(benchmark::State& state) {
  const auto from = dsm::DataDistribution::blockCyclic(16);
  const auto to = dsm::DataDistribution::foldedBlockCyclic(4, state.range(0) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(comm::generateGlobal("X", state.range(0), from, to, 16));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RedistributionScheduling)->Arg(1 << 12)->Arg(1 << 16);

}  // namespace

BENCHMARK_MAIN();
