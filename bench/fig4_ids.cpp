// Figure 4 reproduction: the iteration descriptors of X for parallel
// iterations i = 0, 1, 2 of TFFT2's F3 with P = 4 (the paper draws shaded
// regions [0..3], [8..11], [16..19] of the linearized X).
#include <algorithm>

#include "bench_util.hpp"
#include "codes/tfft2.hpp"
#include "descriptors/iteration_descriptor.hpp"
#include "support/string_utils.hpp"

int main() {
  using namespace ad;
  bench::Reporter rep("Figure 4 — iteration descriptors of X in F3 (P = 4, Q = 3 iterations)");

  const ir::Program prog = codes::makeTFFT2();
  const auto p = *prog.symbols().lookup("p");
  auto pd = desc::buildPhaseDescriptor(prog, 2, "X");
  const auto assumptions = prog.phase(2).assumptions(prog.symbols());
  const sym::RangeAnalyzer ra(assumptions);
  desc::coalesceStrides(pd, ra);
  desc::unionTerms(pd, ra);
  const auto id = desc::buildIterationDescriptor(pd);

  const std::map<sym::SymbolId, std::int64_t> bind{{p, 2}};  // P = 4
  for (std::int64_t i : {0, 1, 2}) {
    const auto addrs = id.addressesAt(i, bind);
    std::vector<std::int64_t> expected;
    for (std::int64_t a = 8 * i; a < 8 * i + 4; ++a) expected.push_back(a);
    rep.check("I(X," + std::to_string(i) + ") region", join(expected, ","), join(addrs, ","));
    // Memory-map row like the paper's shading.
    std::string row = "X: ";
    for (std::int64_t a = 0; a < 24; ++a) {
      const bool in = std::binary_search(addrs.begin(), addrs.end(), a);
      row += in ? '#' : '.';
    }
    rep.note(row + "   (iteration " + std::to_string(i) + ")");
  }
  return rep.finish();
}
