// Contention-profiler overhead: the profiler must be cheap enough to leave
// on for any diagnostic run.
//
// Both legs run the identical workload — the six-code suite analyzed at
// H in {1, 4, 8} through the batched engine at 8 requested workers, cold
// proof memo per repetition — three repetitions each, best-of taken (the
// benches run on shared CI machines; the minimum is the least noisy
// location estimate). The only difference between the legs is
// obs::profiler().enable().
//
// Emits BENCH_contention.json (schema ad.bench.contention.v1):
//   { "reps": 3, "off_ms": ..., "on_ms": ..., "overhead_pct": ...,
//     "profile": {ad.profile.v1 of the last profiled rep} }
//
// Acceptance (checked here, nonzero exit on failure):
//   - profiler overhead < 5% on the six-code suite,
//   - the profiled leg produced non-empty per-thread rows.
#include <algorithm>
#include <chrono>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "driver/pipeline.hpp"
#include "locality/analysis.hpp"
#include "obs/profiler.hpp"
#include "symbolic/intern.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Workload {
  std::vector<ad::ir::Program> programs;  ///< stable addresses
  std::vector<ad::driver::BatchItem> batch;
};

Workload makeWorkload() {
  Workload w;
  const auto& suite = ad::codes::benchmarkSuite();
  w.programs.reserve(suite.size());
  for (const auto& info : suite) w.programs.push_back(info.build());
  for (const std::int64_t h : {1, 4, 8}) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      ad::driver::BatchItem item;
      item.program = &w.programs[i];
      item.label = suite[i].name;
      item.config.params = ad::codes::bindParams(w.programs[i], suite[i].smallParams);
      item.config.processors = h;
      item.config.simulatePlan = false;
      item.config.simulateBaseline = false;
      w.batch.push_back(std::move(item));
    }
  }
  return w;
}

/// One timed repetition (cold memo). Returns milliseconds.
double runOnce(const Workload& w) {
  ad::sym::ProofMemo::global().clear();
  ad::loc::clearPhaseArrayMemo();
  const auto start = Clock::now();
  const auto results = ad::driver::analyzeBatch(w.batch, 8);
  const double ms = msSince(start);
  for (const auto& res : results) {
    if (!res.has_value()) return -1.0;  // poisoned run: caller fails the check
  }
  return ms;
}

}  // namespace

int main() {
  using namespace ad;
  bench::Reporter r("Contention profiler overhead (six-code suite, jobs=8, best of 3)");

  const Workload w = makeWorkload();
  constexpr int kReps = 3;

  // Interleave off/on repetitions so machine-level drift (thermal, noisy
  // neighbors) hits both legs alike.
  double offBest = -1.0;
  double onBest = -1.0;
  std::string profileJson;
  bool allOk = true;
  sym::ProofMemoEnabledGuard memoOn(true);
  for (int rep = 0; rep < kReps; ++rep) {
    obs::profiler().disable();
    const double offMs = runOnce(w);
    allOk = allOk && offMs >= 0.0;
    if (offMs >= 0.0 && (offBest < 0.0 || offMs < offBest)) offBest = offMs;

    obs::profiler().reset();
    obs::profiler().enable();
    const double onMs = runOnce(w);
    obs::profiler().disable();
    allOk = allOk && onMs >= 0.0;
    if (onMs >= 0.0 && (onBest < 0.0 || onMs < onBest)) onBest = onMs;
    profileJson = obs::profiler().summary();
  }
  r.checkTrue("all repetitions analyzed the full batch", allOk);

  const double overheadPct = (onBest / offBest - 1.0) * 100.0;
  {
    std::ostringstream line;
    line << "profiler off: " << offBest << " ms, on: " << onBest << " ms  (overhead "
         << overheadPct << "%)";
    r.note(line.str());
  }
  r.checkTrue("profiler overhead < 5% (got " + std::to_string(overheadPct) + "%)",
              overheadPct < 5.0);
  r.checkTrue("profiled leg produced per-thread rows",
              profileJson.find("\"tasks\"") != std::string::npos);

  std::ostringstream json;
  json << "{\n  \"schema\": \"ad.bench.contention.v1\",\n";
  json << "  \"reps\": " << kReps << ",\n";
  json << "  \"off_ms\": " << offBest << ",\n  \"on_ms\": " << onBest << ",\n";
  json << "  \"overhead_pct\": " << overheadPct << ",\n";
  json << "  \"profile\": " << (profileJson.empty() ? "{}" : profileJson) << "\n}\n";
  if (!bench::writeTextFile("BENCH_contention.json", json.str())) return EXIT_FAILURE;
  r.note("wrote BENCH_contention.json");

  return r.finish();
}
