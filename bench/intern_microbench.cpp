// Hash-consing arena microbenchmark: cold (miss-path) vs warm (hit-path)
// intern throughput on a family of distinct normal forms, plus the table's
// structural health — mean probe length, load factor, bytes per node.
//
// Legs (best of 3 repetitions each, interleaved so machine drift hits both
// alike):
//   cold: arena restarted, every expression interned for the first time —
//         pays hashing, probing, slab allocation, and occasional rehash;
//   warm: the same expressions re-interned against the populated table —
//         pays hashing and one probe, allocates nothing.
// warm_speedup = cold_ns_per_op / warm_ns_per_op is a within-run ratio, so
// it transfers across machines; the raw ns/op values are informational only.
//
// A separate profiled pass feeds the contention profiler's probe-step
// counters: mean_probe_length = probe_steps / (hits + misses) summed over the
// intern.expr shard family. Near 1.0 means the cached-hash open addressing
// barely chains.
//
// Emits BENCH_intern.json (schema ad.bench.intern.v1):
//   { "distinct_exprs": N, "warm_rounds": R, "reps": 3,
//     "cold_ns_per_op": ..., "warm_ns_per_op": ..., "warm_speedup": ...,
//     "mean_probe_length": ..., "load_factor": ..., "slots": ...,
//     "bytes_per_node": ..., "arena_bytes": ... }
//
// Acceptance (checked here, nonzero exit on failure):
//   - interning is lossless: size() == distinct_exprs after every leg,
//   - warm (hit) path faster than cold (miss) path,
//   - mean probe length <= 4.0, load factor in (0, 0.75],
//   - bytes per node under 4 KiB (slab + slot overhead stays bounded).
#include <chrono>
#include <cstdint>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "obs/profiler.hpp"
#include "symbolic/expr.hpp"
#include "symbolic/intern.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using ad::sym::Expr;
using ad::sym::ExprIntern;

double nsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start).count();
}

/// Distinct normal forms shaped like the suite's subscript arithmetic:
/// parameter-scaled strides, index terms, small offsets, a pow2 sprinkle.
std::vector<Expr> makeExprs(ad::sym::SymbolTable& st, int n) {
  const auto p = st.parameter("P");
  const auto q = st.parameter("Q");
  const auto i = st.index("i");
  const auto j = st.index("j");
  std::vector<Expr> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int k = 0; k < n; ++k) {
    Expr e = Expr::symbol(p) * Expr::constant(k + 1) +
             Expr::symbol(i) * Expr::constant(k % 13) + Expr::constant(k - 7);
    if (k % 3 == 0) e = e + Expr::symbol(q) * Expr::symbol(j);
    if (k % 5 == 0) e = e + Expr::pow2(Expr::symbol(j) + Expr::constant(k % 9));
    out.push_back(e);
  }
  return out;
}

}  // namespace

int main() {
  using namespace ad;
  bench::Reporter r("Hash-consing arena microbench (cold/warm intern throughput, best of 3)");

  constexpr int kDistinct = 4096;
  constexpr int kWarmRounds = 16;
  constexpr int kReps = 3;

  sym::SymbolTable st;
  const std::vector<Expr> exprs = makeExprs(st, kDistinct);

  double coldBest = -1.0;
  double warmBest = -1.0;
  bool lossless = true;
  for (int rep = 0; rep < kReps; ++rep) {
    // Cold: every intern is a miss (arena restarted).
    ExprIntern::global().clear();
    const auto coldStart = Clock::now();
    for (const Expr& e : exprs) (void)ExprIntern::global().intern(e);
    const double coldNs = nsSince(coldStart) / kDistinct;
    if (coldBest < 0.0 || coldNs < coldBest) coldBest = coldNs;
    lossless = lossless && ExprIntern::global().size() == kDistinct;

    // Warm: every intern is a hit against the table the cold leg built.
    const auto warmStart = Clock::now();
    for (int round = 0; round < kWarmRounds; ++round) {
      for (const Expr& e : exprs) (void)ExprIntern::global().intern(e);
    }
    const double warmNs = nsSince(warmStart) / (static_cast<double>(kWarmRounds) * kDistinct);
    if (warmBest < 0.0 || warmNs < warmBest) warmBest = warmNs;
    lossless = lossless && ExprIntern::global().size() == kDistinct;
  }
  const double warmSpeedup = coldBest / warmBest;

  // Profiled pass (outside the timing legs): one full hit round attributes
  // probe steps to the intern.expr shard family.
  obs::profiler().reset();
  obs::profiler().enable();
  for (const Expr& e : exprs) (void)ExprIntern::global().intern(e);
  obs::profiler().disable();
  std::int64_t probeSteps = 0;
  std::int64_t probes = 0;
  for (std::size_t i = 0; i < obs::kMaxShardsPerFamily; ++i) {
    const obs::ShardStats& s = obs::profiler().shard(obs::ShardFamily::kExprIntern, i);
    probeSteps += s.probeSteps.load(std::memory_order_relaxed);
    probes += s.hits.load(std::memory_order_relaxed) + s.misses.load(std::memory_order_relaxed);
  }
  obs::profiler().reset();
  const double meanProbe =
      probes > 0 ? static_cast<double>(probeSteps) / static_cast<double>(probes) : 0.0;

  const ExprIntern::TableStats stats = ExprIntern::global().tableStats();
  const double loadFactor = stats.loadFactor();
  const double bytesPerNode =
      stats.exprs > 0 ? static_cast<double>(stats.bytes) / static_cast<double>(stats.exprs) : 0.0;

  {
    std::ostringstream line;
    line << "cold: " << coldBest << " ns/op, warm: " << warmBest << " ns/op  (warm speedup "
         << warmSpeedup << "x)";
    r.note(line.str());
  }
  {
    std::ostringstream line;
    line << "mean probe length " << meanProbe << " over " << probes << " probes, load factor "
         << loadFactor << " (" << stats.exprs << " exprs / " << stats.slots << " slots), "
         << bytesPerNode << " bytes/node";
    r.note(line.str());
  }

  r.checkTrue("interning is lossless (size == distinct exprs after every leg)", lossless);
  r.checkTrue("profiled pass saw every expression exactly once",
              probes == static_cast<std::int64_t>(kDistinct));
  r.checkTrue("warm (hit) path beats cold (miss) path (got " + std::to_string(warmSpeedup) + "x)",
              warmSpeedup > 1.0);
  r.checkTrue("mean probe length <= 4.0 (got " + std::to_string(meanProbe) + ")",
              meanProbe > 0.0 && meanProbe <= 4.0);
  r.checkTrue("load factor in (0, 0.75] (got " + std::to_string(loadFactor) + ")",
              loadFactor > 0.0 && loadFactor <= 0.75);
  r.checkTrue("bytes per node < 4096 (got " + std::to_string(bytesPerNode) + ")",
              bytesPerNode > 0.0 && bytesPerNode < 4096.0);

  std::ostringstream json;
  json << "{\n  \"schema\": \"ad.bench.intern.v1\",\n";
  json << "  \"distinct_exprs\": " << kDistinct << ",\n";
  json << "  \"warm_rounds\": " << kWarmRounds << ",\n  \"reps\": " << kReps << ",\n";
  json << "  \"cold_ns_per_op\": " << coldBest << ",\n";
  json << "  \"warm_ns_per_op\": " << warmBest << ",\n";
  json << "  \"warm_speedup\": " << warmSpeedup << ",\n";
  json << "  \"mean_probe_length\": " << meanProbe << ",\n";
  json << "  \"load_factor\": " << loadFactor << ",\n  \"slots\": " << stats.slots << ",\n";
  json << "  \"bytes_per_node\": " << bytesPerNode << ",\n";
  json << "  \"arena_bytes\": " << stats.bytes << "\n}\n";
  ExprIntern::global().clear();
  if (!bench::writeTextFile("BENCH_intern.json", json.str())) return EXIT_FAILURE;
  r.note("wrote BENCH_intern.json");

  return r.finish();
}
