// Table 2 reproduction: the constraints of the TFFT2 integer program —
// locality, load balance, storage, affinity — generated automatically from
// the LCG, plus the Eq. 7 objective.
//
// Expected (paper, with P = Q = 32, H = 8):
//   locality X: p31 = p41, P*p41 = Q*p51, p51 = p61, p61 = p71, 2Q*p71 = p81
//   locality Y: p12 = Q*p22, P*p4 = Q*p5, 2Q*p7 = p8   (the paper prints the
//               last two against p32/p62; affinity makes them equivalent)
//   load balance: p11,p81 <= ceil(PQ/H); p31,p41 <= ceil(Q/H);
//                 p21,p51,p61,p71 <= ceil(P/H)
//                 (our F8 loop covers the PQ/2 conjugate pairs explicitly,
//                 so its bound is ceil((PQ/2)/H))
//   storage: p81*H <= Delta_d = PQ; p81*H <= Delta_r/2 in {PQ/2, PQ};
//            p12*H <= PQ; p22*H <= PQ; same three rows for p82
//   affinity: p_k1 = p_k2 for all eight phases.
#include <algorithm>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "ilp/model.hpp"

int main() {
  using namespace ad;
  bench::Reporter rep("Table 2 — ILP constraints for TFFT2 (P = Q = 32, H = 8)");

  const ir::Program prog = codes::makeTFFT2();
  const std::int64_t H = 8;
  const std::int64_t P = 32;
  const std::int64_t Q = 32;
  const auto params = codes::bindParams(prog, {{"P", P}, {"Q", Q}});
  const auto lcg = lcg::buildLCG(prog, params, H);
  const auto model = ilp::buildModel(lcg, params, H, ilp::CostParams{});
  rep.note("\n" + model.str());

  // Locality constraints, as normalized (phaseK, phaseG, ratioK, ratioG).
  struct Loc {
    std::size_t k, g;
    const char* array;
    std::int64_t a, b;  // a*p_k = b*p_g (normalized)
  };
  const Loc expected[] = {
      {2, 3, "X", 1, 1},        // p31 = p41
      {3, 4, "X", P, Q},        // P*p41 = Q*p51
      {4, 5, "X", 1, 1},        // p51 = p61
      {5, 6, "X", 1, 1},        // p61 = p71
      {6, 7, "X", 2 * Q, 1},    // 2Q*p71 = p81
      {0, 1, "Y", 1, Q},        // p12 = Q*p22
      {3, 4, "Y", P, Q},        // (paper: P*p32 = Q*p52)
      {6, 7, "Y", 2 * Q, 1},    // (paper: 2Q*p62 = p82)
  };
  std::size_t locality = 0;
  for (const auto& e : model.equalities()) {
    const auto& vx = model.variables()[e.x];
    const auto& vy = model.variables()[e.y];
    if (vx.phase == vy.phase) continue;  // affinity
    ++locality;
    bool matched = false;
    for (const auto& exp : expected) {
      if (vx.phase != exp.k || vy.phase != exp.g || vx.array != exp.array) continue;
      // normalize a*p_k = b*p_g + c: expect c = 0 and a/b == exp.a/exp.b.
      matched = e.c == 0 && e.a * exp.b == e.b * exp.a;
    }
    rep.checkTrue("locality " + e.label + " [" + vx.array + "]", matched);
  }
  rep.check("number of locality constraints", 8, locality);

  // Load-balance bounds.
  const auto boundOf = [&](std::size_t phase, const char* arr) {
    return model.variables()[model.varIndex(phase, arr)].hi;
  };
  rep.check("p11 <= ceil(PQ/H)", P * Q / H, boundOf(0, "X"));
  rep.check("p21 <= ceil(P/H)", P / H, boundOf(1, "X"));
  rep.check("p31 <= ceil(Q/H)", Q / H, boundOf(2, "X"));
  rep.check("p41 <= ceil(Q/H)", Q / H, boundOf(3, "X"));
  rep.check("p51 <= ceil(P/H)", P / H, boundOf(4, "X"));
  rep.check("p61 <= ceil(P/H)", P / H, boundOf(5, "X"));
  rep.check("p71 <= ceil(P/H)", P / H, boundOf(6, "X"));
  rep.check("p81 <= ceil((PQ/2)/H) (half-spectrum loop)", P * Q / 2 / H, boundOf(7, "X"));

  // Storage constraints.
  std::vector<std::string> storage;
  for (const auto& b : model.storageBounds()) storage.push_back(b.label);
  std::sort(storage.begin(), storage.end());
  rep.check("number of storage constraints", 8, storage.size());
  const auto has = [&](const std::string& s) {
    return std::any_of(storage.begin(), storage.end(),
                       [&](const std::string& x) { return x.find(s) != std::string::npos; });
  };
  rep.checkTrue("p81*H <= Delta_d = PQ", has("p81*H <= Delta_d = " + std::to_string(P * Q)));
  rep.checkTrue("p81*H <= Delta_r/2 = PQ/2",
                has("p81*H <= Delta_r/2 = " + std::to_string(P * Q / 2)));
  rep.checkTrue("p81*H <= Delta_r/2 = PQ", has("p81*H <= Delta_r/2 = " + std::to_string(P * Q)));
  rep.checkTrue("p12*H <= Delta_d = PQ", has("p12*H <= Delta_d = " + std::to_string(P * Q)));
  rep.checkTrue("p22*H <= Delta_d = PQ", has("p22*H <= Delta_d = " + std::to_string(P * Q)));
  rep.checkTrue("p82*H <= Delta_d = PQ", has("p82*H <= Delta_d = " + std::to_string(P * Q)));

  // Affinity constraints.
  std::size_t affinity = 0;
  for (const auto& e : model.equalities()) {
    const auto& vx = model.variables()[e.x];
    const auto& vy = model.variables()[e.y];
    if (vx.phase == vy.phase && e.a == 1 && e.b == 1 && e.c == 0) ++affinity;
  }
  rep.check("affinity constraints (one per phase)", 8, affinity);

  // Objective solves (Eq. 7): two communication edges contribute C^kg.
  const auto sol = model.solve();
  rep.checkTrue("model solves (GAMS substitute)", sol.feasible);
  if (sol.feasible) {
    rep.check("p31 = p41 = p51 = p61 = p71 in the solution", true,
              sol.chunkOf(model, 2) == sol.chunkOf(model, 3) &&
                  sol.chunkOf(model, 3) == sol.chunkOf(model, 4) &&
                  sol.chunkOf(model, 4) == sol.chunkOf(model, 5) &&
                  sol.chunkOf(model, 5) == sol.chunkOf(model, 6));
    rep.check("p81 = 2Q * p71", 2 * Q * sol.chunkOf(model, 6), sol.chunkOf(model, 7));
  }
  return rep.finish();
}
