// Empirical validation of the Theorem-1/2 locality predictions.
//
// For every suite code and P in {1, 4, 8} simulated processors, replays the
// derived execution plan on the parallel trace simulator (one thread per
// simulated processor) and cross-checks the observed local/remote traffic
// against the LCG's edge labels. A single disagreement on any non-uncoupled
// edge fails the bench.
//
// Also emits BENCH_sim.json with per-code replay rates (accesses/sec) and
// local fractions, the raw material for scaling plots; BENCH_sim_metrics.json
// with the cumulative ad.metrics.v1 document over all runs; and
// BENCH_obs.json with the per-stage wall-time breakdown aggregated from the
// tracer's spans — the perf trajectory of every pipeline stage.
#include <fstream>
#include <iomanip>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "driver/pipeline.hpp"
#include "obs/obs.hpp"

namespace {

struct Run {
  std::int64_t processors = 0;
  std::int64_t accesses = 0;
  double accessesPerSecond = 0.0;
  double localFraction = 0.0;
  std::int64_t edgesChecked = 0;
  std::int64_t edgesAgree = 0;
  bool validated = false;
};

struct CodeResult {
  std::string name;
  std::map<std::string, std::int64_t> params;
  std::vector<Run> runs;
};

std::string toJson(const std::vector<CodeResult>& results) {
  std::ostringstream os;
  os << std::setprecision(6);
  os << "{\n  \"benchmark\": \"sim_validation\",\n  \"codes\": [\n";
  for (std::size_t c = 0; c < results.size(); ++c) {
    const auto& r = results[c];
    os << "    {\n      \"name\": \"" << r.name << "\",\n      \"params\": {";
    bool first = true;
    for (const auto& [k, v] : r.params) {
      os << (first ? "" : ", ") << "\"" << k << "\": " << v;
      first = false;
    }
    os << "},\n      \"runs\": [\n";
    for (std::size_t i = 0; i < r.runs.size(); ++i) {
      const auto& run = r.runs[i];
      os << "        {\"processors\": " << run.processors << ", \"accesses\": " << run.accesses
         << ", \"accesses_per_sec\": " << run.accessesPerSecond
         << ", \"local_fraction\": " << run.localFraction
         << ", \"edges_checked\": " << run.edgesChecked
         << ", \"edges_agree\": " << run.edgesAgree
         << ", \"validated\": " << (run.validated ? "true" : "false") << "}"
         << (i + 1 < r.runs.size() ? "," : "") << "\n";
    }
    os << "      ]\n    }" << (c + 1 < results.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  return os.str();
}

std::string stageBreakdownJson(const std::map<std::string, ad::obs::SpanStats>& stats) {
  std::ostringstream os;
  os << "{\n  \"benchmark\": \"obs_stage_breakdown\",\n  \"stages\": [\n";
  bool first = true;
  for (const auto& [name, st] : stats) {
    os << (first ? "" : ",\n") << "    {\"name\": \"" << name << "\", \"count\": " << st.count
       << ", \"total_us\": " << st.totalUs << "}";
    first = false;
  }
  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace

int main() {
  using namespace ad;
  bench::Reporter rep("Trace-simulator validation of Theorem 1/2 (all codes, P in {1,4,8})");

  // Span collection across every run feeds the per-stage breakdown below.
  obs::tracer().enable();

  const std::vector<std::int64_t> processorCounts = {1, 4, 8};
  std::vector<CodeResult> results;

  for (const auto& code : codes::benchmarkSuite()) {
    const ir::Program program = code.build();
    CodeResult cr;
    cr.name = code.name;
    cr.params = code.simParams;

    for (const std::int64_t H : processorCounts) {
      driver::PipelineConfig config;
      config.params = codes::bindParams(program, code.simParams);
      config.processors = H;
      config.simulateBaseline = false;
      config.traceSimulate = true;

      const auto result = driver::analyzeAndSimulate(program, config);
      Run run;
      run.processors = H;
      run.accesses = result.trace->totalAccesses;
      run.accessesPerSecond = result.trace->accessesPerSecond();
      run.localFraction = result.trace->localFraction();
      run.edgesChecked = result.localityCheck->checked;
      run.edgesAgree = result.localityCheck->checked - result.localityCheck->disagreements;
      run.validated = result.localityCheck->ok();
      cr.runs.push_back(run);

      std::ostringstream what;
      what << code.name << " H=" << H << ": " << run.edgesAgree << "/" << run.edgesChecked
           << " edges agree, local fraction " << std::setprecision(4) << run.localFraction;
      rep.checkTrue(what.str(), run.validated);
      if (!run.validated) {
        for (const auto& line : result.localityCheck->str()) std::cout << line;
      }
    }
    results.push_back(std::move(cr));
  }

  if (bench::writeTextFile("BENCH_sim.json", toJson(results))) {
    rep.note("wrote BENCH_sim.json");
  }
  if (bench::writeTextFile("BENCH_sim_metrics.json", obs::metrics().toJson())) {
    rep.note("wrote BENCH_sim_metrics.json (cumulative over all codes and P)");
  }
  const auto stats = obs::tracer().statsByName();
  rep.checkTrue("tracer collected pipeline-stage spans", stats.count("pipeline.ilp_solve") > 0 &&
                                                             stats.count("pipeline.trace_sim") > 0);
  if (bench::writeTextFile("BENCH_obs.json", stageBreakdownJson(stats))) {
    rep.note("wrote BENCH_obs.json (per-stage wall-time breakdown)");
  }
  return rep.finish();
}
