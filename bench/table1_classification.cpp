// Table 1 reproduction: the full edge-label classification — 15 attribute
// pairs x (overlap?) x (balanced?) = 60 cells.
#include <array>

#include "bench_util.hpp"
#include "locality/analysis.hpp"

int main() {
  using namespace ad;
  using loc::Attr;
  bench::Reporter rep("Table 1 — classification of LCG edge labels (60 cells)");

  struct Row {
    Attr k, g;
    const char* name;
    // columns: {overlap+balanced, overlap+nonbalanced, nonoverlap+balanced,
    //           nonoverlap+nonbalanced}
    std::array<const char*, 4> expect;
  };
  const Attr R = Attr::kRead;
  const Attr W = Attr::kWrite;
  const Attr RW = Attr::kReadWrite;
  const Attr P = Attr::kPrivatized;
  const Row rows[] = {
      {R, R, "R - R", {"L", "C", "L", "C"}},
      {R, W, "R - W", {"L", "C", "L", "C"}},
      {R, RW, "R - R/W", {"L", "C", "L", "C"}},
      {R, P, "R - P", {"D", "D", "D", "D"}},
      {W, R, "W - R", {"C", "C", "L", "C"}},
      {W, W, "W - W", {"C", "C", "L", "C"}},
      {W, RW, "W - R/W", {"C", "C", "L", "C"}},
      {W, P, "W - P", {"C", "C", "D", "D"}},
      {RW, R, "R/W - R", {"L", "C", "L", "C"}},
      {RW, W, "R/W - W", {"L", "C", "L", "C"}},
      {RW, RW, "R/W - R/W", {"L", "C", "L", "C"}},
      {RW, P, "R/W - P", {"D", "D", "D", "D"}},
      {P, W, "P - W", {"D", "D", "D", "D"}},
      {P, RW, "P - R/W", {"D", "D", "D", "D"}},
      {P, P, "P - P", {"D", "D", "D", "D"}},
  };

  std::cout << "  pair         | ov+bal ov+nonbal  nov+bal nov+nonbal\n";
  for (const auto& row : rows) {
    const struct {
      bool overlap, balanced;
    } cols[4] = {{true, true}, {true, false}, {false, true}, {false, false}};
    for (int cIdx = 0; cIdx < 4; ++cIdx) {
      const auto label =
          loc::classifyEdge(row.k, row.g, cols[cIdx].overlap, cols[cIdx].balanced);
      rep.check(std::string(row.name) + (cols[cIdx].overlap ? " [overl" : " [non-overl") +
                    (cols[cIdx].balanced ? ", bal]" : ", non-bal]"),
                row.expect[static_cast<std::size_t>(cIdx)], loc::edgeLabelName(label));
    }
  }
  return rep.finish();
}
