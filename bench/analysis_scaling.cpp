// Batched analysis engine scaling: serial legacy engine vs the memoized
// work-stealing engine at 1/2/4/8 worker threads.
//
// Workload: the full six-code suite, each analyzed at H in {1, 4, 8}
// (18 pipeline runs per leg), analysis only — LCG construction, ILP, plan
// derivation and communication generation, no DSM replay. "serial" is the
// pre-batching engine: proof memo disabled, no pool. The batched legs share
// one cold proof memo per leg, so their advantage combines memoized
// descriptor algebra (stride/offset families recur across codes and
// processor counts) with parallel per-array analysis.
//
// Emits BENCH_analysis.json:
//   { "serial_ms": ..., "runs": [{"jobs": J, "ms": ..., "speedup": ...}...],
//     "tfft2": {"hits": ..., "misses": ..., "hit_rate": ...} }
//
// Acceptance (checked here, nonzero exit on failure):
//   - >= 2x wall-time reduction at jobs=8 vs the serial engine,
//   - > 50% proof-memo hit rate on the TFFT2 segment.
#include <chrono>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "driver/pipeline.hpp"
#include "symbolic/intern.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct Workload {
  std::vector<ad::ir::Program> programs;  ///< stable addresses
  std::vector<ad::driver::BatchItem> batch;
};

Workload makeWorkload() {
  Workload w;
  const auto& suite = ad::codes::benchmarkSuite();
  w.programs.reserve(suite.size());
  for (const auto& info : suite) w.programs.push_back(info.build());
  for (const std::int64_t h : {1, 4, 8}) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      ad::driver::BatchItem item;
      item.program = &w.programs[i];
      item.config.params = ad::codes::bindParams(w.programs[i], suite[i].smallParams);
      item.config.processors = h;
      item.config.simulatePlan = false;
      item.config.simulateBaseline = false;
      w.batch.push_back(std::move(item));
    }
  }
  return w;
}

}  // namespace

int main() {
  using namespace ad;
  bench::Reporter r("Batched analysis engine scaling (six-code suite x H in {1,4,8})");

  const Workload w = makeWorkload();

  // Serial baseline: the legacy engine — no memo, no pool, one item at a time.
  double serialMs = 0.0;
  {
    sym::ProofMemoEnabledGuard off(false);
    const auto start = Clock::now();
    std::size_t done = 0;
    for (const auto& item : w.batch) {
      const auto result = driver::analyzeAndSimulate(*item.program, item.config);
      done += result.plan.iteration.empty() ? 0 : 1;
    }
    serialMs = msSince(start);
    r.checkTrue("serial engine analyzed all " + std::to_string(w.batch.size()) + " configs",
                done == w.batch.size());
  }
  r.note("serial (legacy engine): " + std::to_string(serialMs) + " ms");

  struct Leg {
    std::size_t jobs;
    double ms;
    double speedup;
  };
  std::vector<Leg> legs;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    sym::ProofMemoEnabledGuard on(true);
    sym::ProofMemo::global().clear();  // each leg earns its own cache
    const auto start = Clock::now();
    const auto results = driver::analyzeBatch(w.batch, jobs);
    const double ms = msSince(start);
    std::size_t done = 0;
    for (const auto& res : results) done += res.has_value() ? 1 : 0;
    if (done != w.batch.size()) {
      r.checkTrue("batched engine (jobs=" + std::to_string(jobs) + ") analyzed all configs",
                  false);
    }
    legs.push_back({jobs, ms, serialMs / ms});
    std::ostringstream line;
    line << "jobs=" << jobs << ": " << ms << " ms  (speedup " << (serialMs / ms) << "x)";
    r.note(line.str());
  }

  // TFFT2 cache-locality segment: the running example analyzed at the three
  // processor counts against one cold memo. analyzePhaseArray is
  // H-independent, so the cross-H reuse is exactly what the memo captures.
  sym::ProofMemo::Stats tfft2Stats;
  {
    sym::ProofMemoEnabledGuard on(true);
    sym::ProofMemo::global().clear();
    const ir::Program prog = codes::makeTFFT2();
    for (const std::int64_t h : {1, 4, 8}) {
      driver::PipelineConfig config;
      config.params = codes::bindParams(prog, {{"P", 64}, {"Q", 64}});
      config.processors = h;
      config.simulatePlan = false;
      config.simulateBaseline = false;
      const auto result = driver::analyzeAndSimulate(prog, config);
      (void)result;
    }
    tfft2Stats = sym::ProofMemo::global().stats();
  }
  std::ostringstream hitLine;
  hitLine << "tfft2 memo: " << tfft2Stats.hits << " hits / " << tfft2Stats.misses
          << " misses (rate " << tfft2Stats.hitRate() << ")";
  r.note(hitLine.str());

  const double best = legs.back().speedup;
  r.checkTrue(">= 2x wall-time reduction at jobs=8 vs the serial engine (got " +
                  std::to_string(best) + "x)",
              best >= 2.0);
  r.checkTrue("> 50% proof-memo hit rate on TFFT2 (got " +
                  std::to_string(tfft2Stats.hitRate() * 100.0) + "%)",
              tfft2Stats.hitRate() > 0.5);

  std::ostringstream json;
  json << "{\n  \"schema\": \"ad.bench.analysis.v1\",\n";
  json << "  \"workload\": {\"codes\": 6, \"processor_counts\": [1, 4, 8], \"configs\": "
       << w.batch.size() << "},\n";
  json << "  \"serial_ms\": " << serialMs << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    json << "    {\"jobs\": " << legs[i].jobs << ", \"ms\": " << legs[i].ms
         << ", \"speedup\": " << legs[i].speedup << "}" << (i + 1 < legs.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"tfft2\": {\"hits\": " << tfft2Stats.hits
       << ", \"misses\": " << tfft2Stats.misses << ", \"hit_rate\": " << tfft2Stats.hitRate()
       << "}\n}\n";
  if (!bench::writeTextFile("BENCH_analysis.json", json.str())) return EXIT_FAILURE;
  r.note("wrote BENCH_analysis.json");

  return r.finish();
}
