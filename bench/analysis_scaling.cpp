// Batched analysis engine scaling on a 130-code workload: serial legacy
// engine vs the memoized work-stealing engine at 1/2/4/8 worker threads.
//
// Workload: the ten-code benchmark suite (six 1999 codes + the AI/HPC kernel
// family) analyzed at H in {1, 4, 8} (30 pipeline configs), plus the four
// kernels again under their power-of-two bindings at the same H values (12
// configs — both binding classes must exercise the same memoized algebra),
// plus 114 generated stencil codes (bench/workload_gen.hpp
// — six shared stride/offset families, rotated per variant) analyzed at H=4,
// plus 6 pow2 butterfly codes (TFFT2's cost class: 2^(l-1) subscripts that
// are expensive for the prover, composed from a six-kernel shared pool)
// analyzed at H in {1, 4, 8}. Analysis only — LCG construction, ILP, plan
// derivation and communication generation, no DSM replay. "serial" is the
// pre-batching engine: proof memo disabled, no pool, one config at a time.
// The batched legs share one cold proof memo per leg, so their advantage
// combines memoized descriptor algebra (the stride families recur across
// arrays, phases, codes, and processor counts) with the phase-array result
// memo (structurally identical phases analyze once, wherever they appear)
// and parallel per-(phase,array) analysis.
//
// The jobs=8 leg runs with the contention profiler and tracer enabled and
// reports where its wall-clock went: per-stage span totals (lcg.build,
// ilp.solve, ...) and the ad.profile.v1 per-thread work/wait split are
// printed and embedded in the artifact.
//
// Emits BENCH_analysis.json (schema ad.bench.analysis.v2):
//   { "workload": {...}, "serial_ms": ...,
//     "runs": [{"jobs": J, "ms": ..., "speedup": ...} ...],
//     "tfft2": {"hits": ..., "misses": ..., "hit_rate": ...},
//     "stages": [{"name": ..., "count": ..., "total_us": ...} ...],
//     "profile": {ad.profile.v1} }
//
// Acceptance (checked here, nonzero exit on failure):
//   - >= 5x wall-time reduction at jobs=8 vs the serial engine,
//   - > 50% proof-memo hit rate on the TFFT2 segment.
#include <chrono>
#include <sstream>
#include <vector>

#include "bench_util.hpp"
#include "codes/suite.hpp"
#include "codes/tfft2.hpp"
#include "driver/pipeline.hpp"
#include "frontend/parser.hpp"
#include "locality/analysis.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "symbolic/intern.hpp"
#include "workload_gen.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

constexpr std::size_t kGenFamilies = 6;
constexpr std::size_t kGenVariants = 19;  // 6 * 19 = 114 generated stencils

struct Workload {
  std::vector<ad::ir::Program> programs;  ///< stable addresses
  std::vector<ad::driver::BatchItem> batch;
  std::size_t codes = 0;
  std::size_t generated = 0;
};

Workload makeWorkload() {
  Workload w;
  const auto& suite = ad::codes::benchmarkSuite();
  w.programs.reserve(suite.size() + kGenFamilies * kGenVariants + ad::bench::kPow2Variants);
  for (const auto& info : suite) w.programs.push_back(info.build());
  // Suite codes at three processor counts (the original scaling workload).
  for (const std::int64_t h : {1, 4, 8}) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      ad::driver::BatchItem item;
      item.program = &w.programs[i];
      item.label = suite[i].name;
      item.config.params = ad::codes::bindParams(w.programs[i], suite[i].smallParams);
      item.config.processors = h;
      item.config.simulatePlan = false;
      item.config.simulateBaseline = false;
      w.batch.push_back(std::move(item));
    }
  }
  // The kernel family again under its power-of-two bindings (the suite's
  // smallParams are deliberately non-pow2): same programs, different
  // parameter values, so the pow2 class rides the same memoized descriptors.
  for (const std::int64_t h : {1, 4, 8}) {
    for (std::size_t i = 0; i < suite.size(); ++i) {
      const auto& info = suite[i];
      if (info.name != "matmul" && info.name != "conv2d" && info.name != "attention" &&
          info.name != "stencil_tt") {
        continue;
      }
      ad::driver::BatchItem item;
      item.program = &w.programs[i];
      item.label = info.name + "_pow2";
      item.config.params = ad::codes::bindParams(w.programs[i], info.simParams);
      item.config.processors = h;
      item.config.simulatePlan = false;
      item.config.simulateBaseline = false;
      w.batch.push_back(std::move(item));
    }
  }
  // Generated stencil codes, one config each at H=4.
  for (std::size_t f = 0; f < kGenFamilies; ++f) {
    for (std::size_t v = 0; v < kGenVariants; ++v) {
      w.programs.push_back(
          ad::frontend::parseProgram(ad::bench::generateStencilSource(f, v)));
      ad::driver::BatchItem item;
      item.program = &w.programs.back();
      item.label = ad::bench::generatedLabel(f, v);
      item.config.params = ad::codes::bindParams(w.programs.back(), {{"N", 64}});
      item.config.processors = 4;
      item.config.simulatePlan = false;
      item.config.simulateBaseline = false;
      w.batch.push_back(std::move(item));
      ++w.generated;
    }
  }
  // Pow2 butterfly codes at three processor counts: individually expensive
  // for the serial engine, near-free for the memoized one (shared kernels).
  {
    const std::size_t first = w.programs.size();
    for (std::size_t v = 0; v < ad::bench::kPow2Variants; ++v) {
      w.programs.push_back(ad::frontend::parseProgram(ad::bench::generatePow2Source(v)));
      ++w.generated;
    }
    for (const std::int64_t h : {1, 4, 8}) {
      for (std::size_t v = 0; v < ad::bench::kPow2Variants; ++v) {
        ad::driver::BatchItem item;
        item.program = &w.programs[first + v];
        item.label = ad::bench::pow2Label(v);
        item.config.params = ad::codes::bindParams(w.programs[first + v], {{"N", 64}});
        item.config.processors = h;
        item.config.simulatePlan = false;
        item.config.simulateBaseline = false;
        w.batch.push_back(std::move(item));
      }
    }
  }
  w.codes = suite.size() + w.generated;
  return w;
}

}  // namespace

int main() {
  using namespace ad;
  bench::Reporter r(
      "Batched analysis engine scaling (ten-code suite x H in {1,4,8}, kernel pow2 "
      "bindings + 120 generated codes)");

  const Workload w = makeWorkload();
  r.note("workload: " + std::to_string(w.codes) + " codes (" + std::to_string(w.generated) +
         " generated), " + std::to_string(w.batch.size()) + " configs");

  // Serial baseline: the legacy engine — no memo, no pool, one item at a time.
  double serialMs = 0.0;
  {
    sym::ProofMemoEnabledGuard off(false);
    const auto start = Clock::now();
    std::size_t done = 0;
    for (const auto& item : w.batch) {
      const auto result = driver::analyzeAndSimulate(*item.program, item.config);
      done += result.plan.iteration.empty() ? 0 : 1;
    }
    serialMs = msSince(start);
    r.checkTrue("serial engine analyzed all " + std::to_string(w.batch.size()) + " configs",
                done == w.batch.size());
  }
  r.note("serial (legacy engine): " + std::to_string(serialMs) + " ms");

  struct Leg {
    std::size_t jobs;
    double ms;
    double speedup;
  };
  std::vector<Leg> legs;
  for (const std::size_t jobs : {1u, 2u, 4u, 8u}) {
    sym::ProofMemoEnabledGuard on(true);
    sym::ProofMemo::global().clear();  // each leg earns its own caches
    loc::clearPhaseArrayMemo();
    const auto start = Clock::now();
    const auto results = driver::analyzeBatch(w.batch, jobs);
    const double ms = msSince(start);
    std::size_t done = 0;
    for (const auto& res : results) done += res.has_value() ? 1 : 0;
    if (done != w.batch.size()) {
      r.checkTrue("batched engine (jobs=" + std::to_string(jobs) + ") analyzed all configs",
                  false);
    }
    legs.push_back({jobs, ms, serialMs / ms});
    std::ostringstream line;
    line << "jobs=" << jobs << ": " << ms << " ms  (speedup " << (serialMs / ms) << "x)";
    r.note(line.str());
  }

  // Warm leg: jobs=8 re-run against the previous leg's caches. The gap
  // between this and the cold jobs=8 leg is the cost of cache misses; the
  // warm time itself is the floor of non-memoizable per-config work.
  {
    sym::ProofMemoEnabledGuard on(true);
    const auto start = Clock::now();
    const auto results = driver::analyzeBatch(w.batch, 8);
    const double ms = msSince(start);
    std::size_t done = 0;
    for (const auto& res : results) done += res.has_value() ? 1 : 0;
    r.checkTrue("warm leg analyzed all configs", done == w.batch.size());
    std::ostringstream line;
    line << "jobs=8 warm: " << ms << " ms  (speedup " << (serialMs / ms) << "x)";
    r.note(line.str());
  }

  // Diagnostic leg: jobs=8 again with the contention profiler and tracer on.
  // Kept out of the timing table so profiling overhead never contaminates
  // the speedup gate — its job is to answer "where did the time go".
  std::string profileJson;
  std::map<std::string, obs::SpanStats> stageStats;
  {
    sym::ProofMemoEnabledGuard on(true);
    sym::ProofMemo::global().clear();
    loc::clearPhaseArrayMemo();
    obs::profiler().reset();
    obs::profiler().enable();
    obs::tracer().clear();
    obs::tracer().enable();
    const auto results = driver::analyzeBatch(w.batch, 8);
    obs::profiler().disable();
    obs::tracer().disable();
    profileJson = obs::profiler().summary();
    stageStats = obs::tracer().statsByName();
    std::size_t done = 0;
    for (const auto& res : results) done += res.has_value() ? 1 : 0;
    r.checkTrue("profiled diagnostic leg analyzed all configs", done == w.batch.size());
  }

  // Per-stage breakdown of the profiled leg: span totals answer "which stage",
  // the profile's thread rows answer "work or wait". Span totals are summed
  // over all executing threads, so nested spans overlap-count by design.
  r.note("per-stage breakdown (profiled jobs=8 leg):");
  for (const auto& [name, stats] : stageStats) {
    std::ostringstream line;
    line << "  " << name << ": " << stats.count << " spans, " << stats.totalUs / 1000.0
         << " ms total";
    r.note(line.str());
  }

  // TFFT2 cache-locality segment: the running example analyzed at the three
  // processor counts against one cold memo. analyzePhaseArray is
  // H-independent, so the cross-H reuse is exactly what the memo captures.
  sym::ProofMemo::Stats tfft2Stats;
  {
    sym::ProofMemoEnabledGuard on(true);
    sym::ProofMemo::global().clear();
    loc::clearPhaseArrayMemo();
    const ir::Program prog = codes::makeTFFT2();
    for (const std::int64_t h : {1, 4, 8}) {
      driver::PipelineConfig config;
      config.params = codes::bindParams(prog, {{"P", 64}, {"Q", 64}});
      config.processors = h;
      config.simulatePlan = false;
      config.simulateBaseline = false;
      const auto result = driver::analyzeAndSimulate(prog, config);
      (void)result;
    }
    tfft2Stats = sym::ProofMemo::global().stats();
  }
  std::ostringstream hitLine;
  hitLine << "tfft2 memo: " << tfft2Stats.hits << " hits / " << tfft2Stats.misses
          << " misses (rate " << tfft2Stats.hitRate() << ")";
  r.note(hitLine.str());

  const double best = legs.back().speedup;
  r.checkTrue(">= 5x wall-time reduction at jobs=8 vs the serial engine (got " +
                  std::to_string(best) + "x)",
              best >= 5.0);
  r.checkTrue("> 50% proof-memo hit rate on TFFT2 (got " +
                  std::to_string(tfft2Stats.hitRate() * 100.0) + "%)",
              tfft2Stats.hitRate() > 0.5);

  std::ostringstream json;
  json << "{\n  \"schema\": \"ad.bench.analysis.v2\",\n";
  json << "  \"workload\": {\"codes\": " << w.codes << ", \"generated\": " << w.generated
       << ", \"processor_counts\": [1, 4, 8], \"configs\": " << w.batch.size() << "},\n";
  json << "  \"serial_ms\": " << serialMs << ",\n  \"runs\": [\n";
  for (std::size_t i = 0; i < legs.size(); ++i) {
    json << "    {\"jobs\": " << legs[i].jobs << ", \"ms\": " << legs[i].ms
         << ", \"speedup\": " << legs[i].speedup << "}" << (i + 1 < legs.size() ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"tfft2\": {\"hits\": " << tfft2Stats.hits
       << ", \"misses\": " << tfft2Stats.misses << ", \"hit_rate\": " << tfft2Stats.hitRate()
       << "},\n";
  json << "  \"stages\": [\n";
  {
    std::size_t i = 0;
    for (const auto& [name, stats] : stageStats) {
      json << "    {\"name\": \"" << name << "\", \"count\": " << stats.count
           << ", \"total_us\": " << stats.totalUs << "}"
           << (++i < stageStats.size() ? "," : "") << "\n";
    }
  }
  json << "  ],\n  \"profile\": " << (profileJson.empty() ? "{}" : profileJson) << "\n}\n";
  if (!bench::writeTextFile("BENCH_analysis.json", json.str())) return EXIT_FAILURE;
  r.note("wrote BENCH_analysis.json");

  return r.finish();
}
